//! The Quill interpreter: evaluates programs over slot vectors of any
//! [`Ring`], giving concrete execution (`Zt`) and symbolic lifting
//! (`SymPoly`) from one code path.
//!
//! Rotation semantics follow Table 1: `Rotate(ct, x)` puts
//! `ct.data[(i + x) mod n]` into slot `i` — a **left** circular rotation for
//! positive `x`.

use crate::program::{Instr, Program, PtOperand, ValRef};
use crate::ring::{Ring, Zt};
use crate::symbolic::SymPoly;

/// Rotates `v` left by `r` slots (negative `r` rotates right).
pub fn rotate_left<R: Clone>(v: &[R], r: i64) -> Vec<R> {
    let n = v.len() as i64;
    let shift = r.rem_euclid(n) as usize;
    let mut out = Vec::with_capacity(v.len());
    out.extend_from_slice(&v[shift..]);
    out.extend_from_slice(&v[..shift]);
    out
}

/// Evaluates `prog` over slot vectors of ring `R`, returning the output
/// vector. All inputs must share one slot count `n ≥ 1`.
///
/// # Panics
///
/// Panics if input arities or slot counts are inconsistent, or the program
/// is structurally invalid (validate first).
pub fn eval<R: Ring>(prog: &Program, ct_inputs: &[Vec<R>], pt_inputs: &[Vec<R>]) -> Vec<R> {
    assert_eq!(ct_inputs.len(), prog.num_ct_inputs, "ct input arity");
    assert_eq!(pt_inputs.len(), prog.num_pt_inputs, "pt input arity");
    let n = ct_inputs
        .first()
        .map(Vec::len)
        .or_else(|| pt_inputs.first().map(Vec::len))
        .expect("at least one input required");
    assert!(n >= 1);
    for v in ct_inputs.iter().chain(pt_inputs) {
        assert_eq!(v.len(), n, "all inputs must have the same slot count");
    }
    let template = &ct_inputs
        .first()
        .or_else(|| pt_inputs.first())
        .expect("at least one input")[0];

    let mut results: Vec<Vec<R>> = Vec::with_capacity(prog.instrs.len());
    let get = |r: &ValRef, results: &[Vec<R>]| -> Vec<R> {
        match r {
            ValRef::Input(i) => ct_inputs[*i].clone(),
            ValRef::Instr(j) => results[*j].clone(),
        }
    };
    let get_pt = |p: &PtOperand| -> Vec<R> {
        match p {
            PtOperand::Input(i) => pt_inputs[*i].clone(),
            PtOperand::Splat(v) => vec![template.from_i64(*v); n],
        }
    };
    for instr in &prog.instrs {
        let out = match instr {
            Instr::AddCtCt(a, b) => zip(&get(a, &results), &get(b, &results), R::add),
            Instr::SubCtCt(a, b) => zip(&get(a, &results), &get(b, &results), R::sub),
            Instr::MulCtCt(a, b) => zip(&get(a, &results), &get(b, &results), R::mul),
            Instr::AddCtPt(a, p) => zip(&get(a, &results), &get_pt(p), R::add),
            Instr::SubCtPt(a, p) => zip(&get(a, &results), &get_pt(p), R::sub),
            Instr::MulCtPt(a, p) => zip(&get(a, &results), &get_pt(p), R::mul),
            Instr::RotCt(a, r) => rotate_left(&get(a, &results), *r),
            // Relinearization changes the ciphertext representation, not
            // the encrypted slots: the identity here.
            Instr::Relin(a) => get(a, &results),
        };
        results.push(out);
    }
    get(&prog.output, &results)
}

fn zip<R: Ring>(a: &[R], b: &[R], f: fn(&R, &R) -> R) -> Vec<R> {
    a.iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

/// Concrete evaluation over `Z_t` from unsigned slot values.
pub fn eval_concrete(
    prog: &Program,
    ct_inputs: &[Vec<u64>],
    pt_inputs: &[Vec<u64>],
    t: u64,
) -> Vec<u64> {
    let wrap = |vs: &[Vec<u64>]| -> Vec<Vec<Zt>> {
        vs.iter()
            .map(|v| v.iter().map(|&x| Zt::new(x, t)).collect())
            .collect()
    };
    eval(prog, &wrap(ct_inputs), &wrap(pt_inputs))
        .into_iter()
        .map(|z| z.value())
        .collect()
}

/// Symbolic lifting: evaluates `prog` with slot `i` of ciphertext input `j`
/// bound to variable `j·n + i` (plaintext inputs follow, offset by the total
/// ciphertext variable count). Returns one canonical polynomial per output
/// slot.
pub fn eval_symbolic(prog: &Program, n: usize, t: u64) -> Vec<SymPoly> {
    let ct_inputs: Vec<Vec<SymPoly>> = (0..prog.num_ct_inputs)
        .map(|j| {
            (0..n)
                .map(|i| SymPoly::var((j * n + i) as u32, t))
                .collect()
        })
        .collect();
    let ct_vars = prog.num_ct_inputs * n;
    let pt_inputs: Vec<Vec<SymPoly>> = (0..prog.num_pt_inputs)
        .map(|j| {
            (0..n)
                .map(|i| SymPoly::var((ct_vars + j * n + i) as u32, t))
                .collect()
        })
        .collect();
    eval(prog, &ct_inputs, &pt_inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Instr, Program, PtOperand, ValRef};

    const T: u64 = 65537;

    #[test]
    fn rotate_left_semantics() {
        let v = vec![10, 20, 30, 40];
        assert_eq!(rotate_left(&v, 1), vec![20, 30, 40, 10]);
        assert_eq!(rotate_left(&v, -1), vec![40, 10, 20, 30]);
        assert_eq!(rotate_left(&v, 4), v);
        assert_eq!(rotate_left(&v, 5), rotate_left(&v, 1));
    }

    #[test]
    fn dot_product_reduction() {
        // mul-ct-pt then rotate/add tree over 4 slots.
        let prog = Program::new(
            "dot4",
            1,
            1,
            vec![
                Instr::MulCtPt(ValRef::Input(0), PtOperand::Input(0)),
                Instr::RotCt(ValRef::Instr(0), 2),
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Instr(1)),
                Instr::RotCt(ValRef::Instr(2), 1),
                Instr::AddCtCt(ValRef::Instr(2), ValRef::Instr(3)),
            ],
            ValRef::Instr(4),
        );
        let x = vec![1u64, 2, 3, 4];
        let w = vec![5u64, 6, 7, 8];
        let out = eval_concrete(&prog, &[x], &[w], T);
        assert_eq!(out[0], 5 + 12 + 21 + 32);
    }

    #[test]
    fn splat_constants() {
        let prog = Program::new(
            "times-two-plus-one",
            1,
            0,
            vec![
                Instr::MulCtPt(ValRef::Input(0), PtOperand::Splat(2)),
                Instr::AddCtPt(ValRef::Instr(0), PtOperand::Splat(1)),
            ],
            ValRef::Instr(1),
        );
        assert_eq!(eval_concrete(&prog, &[vec![5, 10]], &[], T), vec![11, 21]);
    }

    #[test]
    fn symbolic_matches_concrete_on_samples() {
        let prog = Program::new(
            "mix",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::MulCtCt(ValRef::Input(0), ValRef::Instr(0)),
                Instr::SubCtPt(ValRef::Instr(1), PtOperand::Splat(3)),
            ],
            ValRef::Instr(2),
        );
        let n = 4;
        let sym = eval_symbolic(&prog, n, T);
        let x = vec![7u64, 11, 13, 17];
        let conc = eval_concrete(&prog, std::slice::from_ref(&x), &[], T);
        for (slot, poly) in sym.iter().enumerate() {
            let v = poly.eval(&|var| x[var as usize % n]);
            assert_eq!(v, conc[slot], "slot {slot}");
        }
    }

    #[test]
    fn symbolic_output_identity() {
        // rotating by n is the identity, symbolically too.
        let prog = Program::new(
            "rot-n",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 2),
                Instr::RotCt(ValRef::Instr(0), 2),
            ],
            ValRef::Instr(1),
        );
        let sym = eval_symbolic(&prog, 4, T);
        let id = eval_symbolic(&Program::new("id", 1, 0, vec![], ValRef::Input(0)), 4, T);
        assert_eq!(sym, id);
    }

    #[test]
    fn pt_inputs_are_symbolic_too() {
        let prog = Program::new(
            "ct-times-pt",
            1,
            1,
            vec![Instr::MulCtPt(ValRef::Input(0), PtOperand::Input(0))],
            ValRef::Instr(0),
        );
        let sym = eval_symbolic(&prog, 2, T);
        // slot 0 = x0 * x2 (pt vars offset by ct var count 2)
        assert_eq!(sym[0].degree(), 2);
        assert_eq!(sym[0].variables(), vec![0, 2]);
    }
}
