//! # quill — the HE DSL from the Porcupine paper
//!
//! Quill captures the semantics, noise behaviour, and latency of the BFV
//! SIMD instruction set (Table 1 of the paper) so the Porcupine synthesizer
//! can reason about homomorphic-encryption kernels without touching real
//! ciphertexts.
//!
//! * [`program`] — straight-line SSA kernels over ciphertext/plaintext
//!   operands (including explicit `relin-ct`), with logic-depth and
//!   multiplicative-depth analyses.
//! * [`analysis`] — static ciphertext-size and per-value level analyses,
//!   plus the backend-legality check the `-O` lowering pipeline
//!   establishes.
//! * [`interp`] — one generic interpreter instantiated concretely (over
//!   [`ring::Zt`] slot vectors, for CEGIS examples) and symbolically (over
//!   [`symbolic::SymPoly`] canonical polynomials, for exact verification).
//! * [`scheme`] — which backend the pipeline targets ([`scheme::SchemeId`])
//!   and which instructions that backend can execute
//!   ([`scheme::SchemeLegality`]).
//! * [`cost`] — the paper's `latency × (1 + mdepth)` objective, with
//!   per-scheme latency tables profiled from the in-repo backends.
//! * [`sexpr`] — a Racket-flavoured surface syntax with a round-tripping
//!   parser and printer.
//!
//! ## Example
//!
//! ```
//! use quill::program::{Instr, Program, ValRef};
//! use quill::{cost, interp};
//!
//! // Figure 5(a): the synthesized box blur.
//! let blur = Program::new(
//!     "box-blur",
//!     1,
//!     0,
//!     vec![
//!         Instr::RotCt(ValRef::Input(0), 1),
//!         Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
//!         Instr::RotCt(ValRef::Instr(1), 5),
//!         Instr::AddCtCt(ValRef::Instr(1), ValRef::Instr(2)),
//!     ],
//!     ValRef::Instr(3),
//! );
//! blur.validate()?;
//! let out = interp::eval_concrete(&blur, &[vec![1; 25]], &[], 65537);
//! assert_eq!(out[0], 4); // 2×2 window of ones
//! let c = cost::cost(&blur, &cost::LatencyModel::uniform());
//! assert_eq!(c, 4.0);
//! # Ok::<(), quill::program::ProgramError>(())
//! ```

pub mod analysis;
pub mod cost;
pub mod interp;
pub mod program;
pub mod ring;
pub mod scheme;
pub mod sexpr;
pub mod symbolic;

pub use cost::{cost, eager_cost, LatencyModel};
pub use program::{Instr, Program, ProgramError, PtOperand, ValRef};
pub use ring::{Ring, Zt};
pub use scheme::{SchemeId, SchemeLegality};
pub use symbolic::SymPoly;
