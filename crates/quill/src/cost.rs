//! The Quill cost model: per-instruction latencies and the paper's
//! `cost(p) = latency(p) × (1 + mdepth(p))` objective (§5.2).
//!
//! The paper derives instruction latencies by profiling SEAL; we derive them
//! by profiling the in-repo backends (see the `he_ops` bench and the
//! `profile_latency` binary in `porcupine-bench`). The constants in
//! [`LatencyModel::profiled_default`] (BFV) and
//! [`LatencyModel::profiled_bgv`] were measured there; what the synthesizer
//! consumes is only their *ratios*, which are stable across machines
//! (rotation and ct×ct multiply dominate because both key-switch).
//! [`LatencyModel::profiled_for`] picks the table for a
//! [`crate::scheme::SchemeId`].

use crate::analysis::rotation_fans;
use crate::program::{Instr, Program};
use crate::scheme::SchemeId;

/// Per-instruction latency in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// ct + ct.
    pub add_ct_ct: f64,
    /// ct − ct.
    pub sub_ct_ct: f64,
    /// ct × ct, **excluding** relinearization — the raw tensor/rescale
    /// cost. Relinearization is its own op ([`LatencyModel::relin_ct`]) so
    /// the middle-end's lazy-relinearization savings are visible to both
    /// the search and [`LatencyModel::program_latency`].
    pub mul_ct_ct: f64,
    /// ct + pt.
    pub add_ct_pt: f64,
    /// ct − pt.
    pub sub_ct_pt: f64,
    /// ct × pt.
    pub mul_ct_pt: f64,
    /// Slot rotation (Galois automorphism + key switch).
    pub rot_ct: f64,
    /// Relinearization of a size-3 ciphertext (one key switch).
    pub relin_ct: f64,
    /// One-time decompose phase of a hoisted rotation fan: the `k` inverse
    /// and `k²` forward NTTs of the key-switch digit decomposition, paid
    /// once per fan source (see `rlwe_ring::keyswitch::hoist_decompose`).
    pub rot_hoist_setup: f64,
    /// Per-member accumulate of a hoisted rotation: digit-row permutations
    /// plus the pointwise Shoup inner products — no NTTs. The shipped
    /// tables keep `rot_hoist_setup + rot_hoisted ≥ rot_ct` (a one-member
    /// "fan" is never cheaper than a plain rotation, which also keeps
    /// [`LatencyModel::program_latency`] monotone under appending
    /// rotations to a fan).
    pub rot_hoisted: f64,
}

impl LatencyModel {
    /// Latencies measured on the in-repo BFV backend at `N = 4096`,
    /// 3 × 46-bit primes (the `fast_4096` preset), median of repeated runs.
    /// Regenerate with `cargo run -p porcupine-bench --release --bin
    /// profile_latency` (or compare against the seed baseline with the
    /// `he_ops` binary, which writes `BENCH_he_ops.json`; both track
    /// `relinearize` and the raw multiply separately). `relin_ct` is the
    /// measured standalone key switch; `mul_ct_ct` is the *raw*
    /// tensor/rescale (the seed model folded the relin key switch into
    /// it), so lazy relinearization placement shows up in
    /// `program_latency`.
    ///
    /// These constants reflect the allocation-free, encode-once hot path:
    /// plaintext operands are cached `EvalPlaintext`s (the forward NTTs
    /// are paid once at `Evaluator::preencode`, not per op), destinations
    /// are mutated in place, and scratch comes from the evaluator's pool —
    /// exactly what `BfvRunner::run` executes. That makes `add_ct_pt` /
    /// `sub_ct_pt` *cheaper* than `add_ct_ct` (one ciphertext part touched
    /// instead of two) where the previous calibration had them ~4× more
    /// expensive from the per-op re-encode. The key-switching ops
    /// (rotation, multiply plus relin) still dominate, so the
    /// synthesizer's incentives are unchanged in direction, only in
    /// magnitude.
    pub fn profiled_default() -> Self {
        LatencyModel {
            add_ct_ct: 45.4,
            sub_ct_ct: 45.6,
            mul_ct_ct: 5_100.0,
            add_ct_pt: 22.4,
            sub_ct_pt: 22.1,
            mul_ct_pt: 67.0,
            rot_ct: 1_050.0,
            relin_ct: 1_140.0,
            // Measured (he_ops/profile_latency): setup ~720 µs, ~175 µs
            // per member. Setup is carried at 880 so the pair stays
            // monotone against this table's (older-calibration) rot_ct —
            // see the field docs; the fan credit is slightly conservative
            // rather than ever negative.
            rot_hoist_setup: 880.0,
            rot_hoisted: 175.0,
        }
    }

    /// Latencies measured on the in-repo BGV backend under the same
    /// conditions as [`LatencyModel::profiled_default`] (`N = 4096`,
    /// 3 × 46-bit primes, cached `EvalPlaintext`s, pooled scratch).
    ///
    /// The componentwise ops and the key switches run the *same* shared-ring
    /// code as BFV, so those entries match the BFV table. The difference is
    /// `mul_ct_ct`: BGV's multiply is a plain evaluation-domain tensor over
    /// `Q` — no auxiliary-base extension, no `t/Q` rescale — so the raw
    /// multiply measures ~140 µs against BFV's ~4.8 ms, an order of
    /// magnitude *below* a key switch. Under BGV the relinearization (when
    /// the scheme requests one) dominates the multiply it follows.
    /// Regenerate alongside the BFV table with
    /// `cargo run -p porcupine-bench --release --bin profile_latency`.
    pub fn profiled_bgv() -> Self {
        LatencyModel {
            add_ct_ct: 45.4,
            sub_ct_ct: 45.6,
            mul_ct_ct: 140.0,
            add_ct_pt: 22.4,
            sub_ct_pt: 22.1,
            mul_ct_pt: 67.0,
            rot_ct: 1_050.0,
            relin_ct: 1_140.0,
            // Measured (he_ops/profile_latency): setup ~720 µs, ~175 µs
            // per member. Setup is carried at 880 so the pair stays
            // monotone against this table's (older-calibration) rot_ct —
            // see the field docs; the fan credit is slightly conservative
            // rather than ever negative.
            rot_hoist_setup: 880.0,
            rot_hoisted: 175.0,
        }
    }

    /// The profiled latency table for a scheme backend.
    pub fn profiled_for(scheme: SchemeId) -> Self {
        match scheme {
            SchemeId::Bfv => LatencyModel::profiled_default(),
            SchemeId::Bgv => LatencyModel::profiled_bgv(),
        }
    }

    /// A uniform model (every instruction costs 1): makes `cost` rank by
    /// instruction count × (1 + mdepth), useful in tests and ablations.
    pub fn uniform() -> Self {
        LatencyModel {
            add_ct_ct: 1.0,
            sub_ct_ct: 1.0,
            mul_ct_ct: 1.0,
            add_ct_pt: 1.0,
            sub_ct_pt: 1.0,
            mul_ct_pt: 1.0,
            rot_ct: 1.0,
            relin_ct: 1.0,
            // setup + r·hoisted ≥ r·rot_ct for every r, so the uniform
            // model never credits hoisting — it stays a pure
            // instruction-count model.
            rot_hoist_setup: 1.0,
            rot_hoisted: 1.0,
        }
    }

    /// Latency of one instruction.
    pub fn instr_latency(&self, instr: &Instr) -> f64 {
        match instr {
            Instr::AddCtCt(..) => self.add_ct_ct,
            Instr::SubCtCt(..) => self.sub_ct_ct,
            Instr::MulCtCt(..) => self.mul_ct_ct,
            Instr::AddCtPt(..) => self.add_ct_pt,
            Instr::SubCtPt(..) => self.sub_ct_pt,
            Instr::MulCtPt(..) => self.mul_ct_pt,
            Instr::RotCt(..) => self.rot_ct,
            Instr::Relin(..) => self.relin_ct,
        }
    }

    /// Total straight-line latency of a program (µs), pricing same-source
    /// rotation fans at their hoisted cost.
    ///
    /// The runner executes every group of ≥2 rotations sharing a source
    /// through one hoisted decomposition
    /// ([`crate::analysis::rotation_fans`]), so an `r`-member fan costs
    /// `rot_hoist_setup + r·rot_hoisted` instead of `r·rot_ct` — the
    /// credit applies only when that is actually cheaper, so latency never
    /// exceeds the plain per-instruction sum and (because
    /// `rot_hoist_setup + rot_hoisted ≥ rot_ct` in the shipped tables)
    /// never drops below what one fewer rotation would cost.
    pub fn program_latency(&self, prog: &Program) -> f64 {
        let base: f64 = prog.instrs.iter().map(|i| self.instr_latency(i)).sum();
        let hoist_credit: f64 = rotation_fans(prog)
            .iter()
            .map(|fan| {
                let r = fan.members.len() as f64;
                (r * self.rot_ct - (self.rot_hoist_setup + r * self.rot_hoisted)).max(0.0)
            })
            .sum();
        base - hoist_credit
    }

    /// Rescales the table from its calibration point (`N = 4096`, `k = 3`
    /// primes) to the given ring parameters, so modeled latencies are
    /// comparable to measurements taken under per-kernel resolved params.
    ///
    /// Componentwise ops (adds, subs, plaintext ops) scale with the residue
    /// volume `k·N`; key-switching ops (rotation, relinearization, ct×ct
    /// multiply, and both hoisting entries) are dominated by `k²` NTTs and
    /// scale with `k²·N·log₂N`. This is a first-order model — constants and
    /// cache effects are not captured — but it turns the cross-parameter
    /// `model_ratio` in `fig_opt` from tens into order-1.
    pub fn scaled_to(&self, n: usize, primes: usize) -> LatencyModel {
        const N0: f64 = 4096.0;
        const K0: f64 = 3.0;
        let n = n as f64;
        let k = primes as f64;
        let comp = (k * n) / (K0 * N0);
        let ks = (k * k * n * n.log2()) / (K0 * K0 * N0 * N0.log2());
        LatencyModel {
            add_ct_ct: self.add_ct_ct * comp,
            sub_ct_ct: self.sub_ct_ct * comp,
            mul_ct_ct: self.mul_ct_ct * ks,
            add_ct_pt: self.add_ct_pt * comp,
            sub_ct_pt: self.sub_ct_pt * comp,
            mul_ct_pt: self.mul_ct_pt * comp,
            rot_ct: self.rot_ct * ks,
            relin_ct: self.relin_ct * ks,
            rot_hoist_setup: self.rot_hoist_setup * ks,
            rot_hoisted: self.rot_hoisted * ks,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::profiled_default()
    }
}

/// Straight-line sum of per-instruction latencies, with no hoisting
/// credit — the synthesis-time pricing.
fn instr_sum(prog: &Program, model: &LatencyModel) -> f64 {
    prog.instrs.iter().map(|i| model.instr_latency(i)).sum()
}

/// The paper's compound objective: `latency × (1 + multiplicative depth)`,
/// penalizing high-noise programs that would force larger HE parameters.
/// Sums the latencies of exactly the instructions present — a program with
/// explicit `relin-ct` pays for each one, and a lazily-relinearized program
/// is cheaper than its eagerly-lowered sibling.
///
/// Rotations are priced *unhoisted* here, unlike
/// [`LatencyModel::program_latency`]: the searcher's branch-and-bound
/// accounts cost instruction-by-instruction as it extends candidates, so
/// the objective must stay a local sum (and §5.2's objective is exactly
/// that). Rotation hoisting is an execution-engine effect the runner
/// applies after lowering; the fan credit belongs to the measurement-side
/// latency model, not the search ranking.
pub fn cost(prog: &Program, model: &LatencyModel) -> f64 {
    instr_sum(prog, model) * (1.0 + prog.mult_depth() as f64)
}

/// The synthesis-time objective: [`cost`] plus one implicit
/// relinearization per not-yet-relinearized ct×ct multiply.
///
/// The searcher emits programs with no explicit `relin-ct` (relinearization
/// placement is the middle-end's job), but every multiply will cost at
/// least its eager relinearization once lowered at `-O0`. Charging that
/// here keeps the CEGIS cost bound consistent with the search's internal
/// accounting and with what the `-O0` lowering actually executes; the
/// `-O2` lazy placement can only improve on it.
pub fn eager_cost(prog: &Program, model: &LatencyModel) -> f64 {
    let implicit = prog.ct_ct_mul_count().saturating_sub(prog.relin_count());
    (instr_sum(prog, model) + implicit as f64 * model.relin_ct) * (1.0 + prog.mult_depth() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Instr, Program, PtOperand, ValRef};

    #[test]
    fn cost_penalizes_depth() {
        let flat = Program::new(
            "flat",
            2,
            0,
            vec![Instr::AddCtCt(ValRef::Input(0), ValRef::Input(1))],
            ValRef::Instr(0),
        );
        let deep = Program::new(
            "deep",
            2,
            0,
            vec![Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1))],
            ValRef::Instr(0),
        );
        let uniform = LatencyModel::uniform();
        assert_eq!(cost(&flat, &uniform), 1.0);
        assert_eq!(cost(&deep, &uniform), 2.0); // same latency, 1 mult level
    }

    #[test]
    fn profiled_model_orders_instructions_sanely() {
        let m = LatencyModel::profiled_default();
        assert!(m.add_ct_ct < m.mul_ct_pt);
        assert!(m.mul_ct_pt < m.rot_ct);
        assert!(m.rot_ct < m.mul_ct_ct);
        // Relinearization is one key switch, like the one inside a
        // rotation, and far below the raw multiply.
        assert!(m.mul_ct_pt < m.relin_ct);
        assert!(m.relin_ct < m.mul_ct_ct);
    }

    /// Per-scheme profiles: BGV's raw multiply avoids BFV's auxiliary-base
    /// machinery, so it must be strictly cheaper, while the shared-ring ops
    /// (adds, key switches) coincide.
    #[test]
    fn bgv_profile_reflects_the_cheaper_multiply() {
        let bfv = LatencyModel::profiled_for(crate::scheme::SchemeId::Bfv);
        let bgv = LatencyModel::profiled_for(crate::scheme::SchemeId::Bgv);
        assert_eq!(bfv, LatencyModel::profiled_default());
        assert!(bgv.mul_ct_ct < bfv.mul_ct_ct);
        assert_eq!(bgv.add_ct_ct, bfv.add_ct_ct);
        assert_eq!(bgv.rot_ct, bfv.rot_ct);
        assert_eq!(bgv.relin_ct, bfv.relin_ct);
        // Key-switching ops still dominate the componentwise ones under
        // both profiles, so the synthesizer's incentives keep direction.
        assert!(bgv.mul_ct_pt < bgv.mul_ct_ct);
        assert!(bgv.add_ct_ct < bgv.rot_ct);
    }

    /// `eager_cost` charges one implicit relinearization per multiply that
    /// lacks an explicit one, and coincides with `cost` on programs whose
    /// relinearizations are all explicit.
    #[test]
    fn eager_cost_charges_implicit_relins() {
        let raw = Program::new(
            "raw",
            2,
            0,
            vec![Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1))],
            ValRef::Instr(0),
        );
        let lowered = Program::new(
            "lowered",
            2,
            0,
            vec![
                Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)),
                Instr::Relin(ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        for m in [LatencyModel::uniform(), LatencyModel::profiled_default()] {
            assert_eq!(eager_cost(&raw, &m), eager_cost(&lowered, &m));
            assert_eq!(eager_cost(&lowered, &m), cost(&lowered, &m));
            assert!(cost(&raw, &m) < eager_cost(&raw, &m));
        }
    }

    /// Single-instruction kernels must rank add ≤ rotate ≤ multiply under
    /// both shipped models — rotation and ct×ct multiply key-switch, so any
    /// calibration that inverts this ordering would steer the synthesizer
    /// toward expensive programs. The uniform model ties on raw latency but
    /// still ranks multiplies last through the depth penalty.
    #[test]
    fn uniform_and_profiled_agree_on_add_rotate_multiply_ordering() {
        let single = |instr: Instr| Program::new("one", 2, 0, vec![instr], ValRef::Instr(0));
        let add = single(Instr::AddCtCt(ValRef::Input(0), ValRef::Input(1)));
        let rot = single(Instr::RotCt(ValRef::Input(0), 1));
        let mul = single(Instr::MulCtCt(ValRef::Input(0), ValRef::Input(1)));
        for m in [LatencyModel::uniform(), LatencyModel::profiled_default()] {
            assert!(cost(&add, &m) <= cost(&rot, &m));
            assert!(cost(&rot, &m) <= cost(&mul, &m));
        }
        // The profiled model separates them strictly.
        let p = LatencyModel::profiled_default();
        assert!(cost(&add, &p) < cost(&rot, &p));
        assert!(cost(&rot, &p) < cost(&mul, &p));
    }

    /// Appending any instruction can only increase the objective: latency is
    /// a sum of positive terms and multiplicative depth never decreases.
    #[test]
    fn cost_is_monotone_under_instruction_append() {
        let base = Program::new(
            "base",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
            ],
            ValRef::Instr(1),
        );
        let appendables = [
            Instr::AddCtCt(ValRef::Instr(1), ValRef::Instr(0)),
            Instr::SubCtCt(ValRef::Instr(1), ValRef::Instr(0)),
            Instr::MulCtCt(ValRef::Instr(1), ValRef::Instr(0)),
            Instr::AddCtPt(ValRef::Instr(1), PtOperand::Splat(3)),
            Instr::SubCtPt(ValRef::Instr(1), PtOperand::Splat(3)),
            Instr::MulCtPt(ValRef::Instr(1), PtOperand::Splat(3)),
            Instr::RotCt(ValRef::Instr(1), 2),
        ];
        for m in [LatencyModel::uniform(), LatencyModel::profiled_default()] {
            let before = cost(&base, &m);
            for extra in &appendables {
                let mut instrs = base.instrs.clone();
                instrs.push(extra.clone());
                let last = instrs.len() - 1;
                let longer = Program::new("longer", 1, 0, instrs, ValRef::Instr(last));
                longer.validate().expect("appended program stays valid");
                assert!(
                    cost(&longer, &m) > before,
                    "appending {extra:?} must increase cost under {m:?}"
                );
            }
        }
    }

    /// An r-member same-source rotation fan is priced at
    /// `setup + r·hoisted` when that beats `r·rot_ct`, and the credit never
    /// makes latency exceed the plain sum (uniform model: no credit at all).
    #[test]
    fn program_latency_prices_rotation_fans_hoisted() {
        let fan3 = Program::new(
            "fan3",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::RotCt(ValRef::Input(0), 5),
                Instr::RotCt(ValRef::Input(0), 6),
                Instr::AddCtCt(ValRef::Instr(0), ValRef::Instr(1)),
                Instr::AddCtCt(ValRef::Instr(3), ValRef::Instr(2)),
            ],
            ValRef::Instr(4),
        );
        let m = LatencyModel::profiled_default();
        let expected = m.rot_hoist_setup + 3.0 * m.rot_hoisted + 2.0 * m.add_ct_ct;
        assert!((m.program_latency(&fan3) - expected).abs() < 1e-6);
        let plain_sum: f64 = fan3.instrs.iter().map(|i| m.instr_latency(i)).sum();
        assert!(m.program_latency(&fan3) < plain_sum);
        // The synthesis objective stays a plain per-instruction sum: the
        // searcher prices rotations unhoisted (see `cost`'s docs).
        assert!((cost(&fan3, &m) - plain_sum).abs() < 1e-6);
        // A lone rotation gets no credit: hoisting it would cost more.
        let lone = Program::new(
            "lone",
            1,
            0,
            vec![Instr::RotCt(ValRef::Input(0), 1)],
            ValRef::Instr(0),
        );
        assert_eq!(m.program_latency(&lone), m.rot_ct);
        // The uniform model's entries never credit hoisting, keeping it a
        // pure instruction-count model.
        let u = LatencyModel::uniform();
        assert_eq!(u.program_latency(&fan3), 5.0);
    }

    /// The shipped tables keep one hoisted member at least as expensive as
    /// a plain rotation (`setup + hoisted ≥ rot_ct`), which is what makes
    /// the fan credit monotone under appending rotations.
    #[test]
    fn hoist_entries_never_undercut_a_single_rotation() {
        for m in [
            LatencyModel::profiled_default(),
            LatencyModel::profiled_bgv(),
            LatencyModel::uniform(),
        ] {
            assert!(m.rot_hoist_setup + m.rot_hoisted >= m.rot_ct);
            assert!(m.rot_hoisted > 0.0);
            // ...while a realistic fan of 3 is cheaper hoisted under the
            // profiled tables.
            if m != LatencyModel::uniform() {
                assert!(m.rot_hoist_setup + 3.0 * m.rot_hoisted < 3.0 * m.rot_ct);
            }
        }
    }

    /// `scaled_to` is the identity at the calibration point and scales
    /// key-switch ops superlinearly vs componentwise ops as N and the prime
    /// count grow.
    #[test]
    fn scaled_to_tracks_ring_parameters() {
        let m = LatencyModel::profiled_default();
        let same = m.scaled_to(4096, 3);
        assert_eq!(same, m);
        let big = m.scaled_to(8192, 4);
        // Componentwise: volume ratio (4·8192)/(3·4096) = 8/3.
        let comp = (4.0 * 8192.0) / (3.0 * 4096.0);
        assert!((big.add_ct_ct / m.add_ct_ct - comp).abs() < 1e-9);
        // Key switches grow faster than componentwise ops.
        assert!(big.rot_ct / m.rot_ct > comp);
        assert!(big.rot_hoist_setup / m.rot_hoist_setup > comp);
        // Shrinking params shrinks the model.
        let small = m.scaled_to(1024, 1);
        assert!(small.rot_ct < m.rot_ct);
        assert!(small.add_ct_ct < m.add_ct_ct);
    }

    #[test]
    fn program_latency_sums_instructions() {
        let m = LatencyModel::uniform();
        let p = Program::new(
            "three",
            1,
            0,
            vec![
                Instr::RotCt(ValRef::Input(0), 1),
                Instr::AddCtCt(ValRef::Input(0), ValRef::Instr(0)),
                Instr::MulCtPt(ValRef::Instr(1), PtOperand::Splat(2)),
            ],
            ValRef::Instr(2),
        );
        assert_eq!(m.program_latency(&p), 3.0);
        assert_eq!(cost(&p, &m), 6.0); // mdepth 1 from mul-ct-pt
    }
}
