//! The ring abstraction reference kernels are written against.
//!
//! The paper lifts Racket reference implementations to symbolic expressions
//! with Rosette. We get the same effect by writing each reference kernel
//! once, generically over [`Ring`], and instantiating it twice: with
//! [`Zt`] for concrete evaluation (CEGIS examples) and with
//! [`crate::symbolic::SymPoly`] for exact symbolic verification.

use std::fmt::Debug;

/// Elements of a commutative ring with a "same context" constructor.
///
/// `from_i64` builds a constant in the **same context** as `self` (same
/// modulus, same variable universe) — the template-element pattern avoids
/// threading a context parameter through every kernel.
pub trait Ring: Clone + Debug + PartialEq {
    /// Sum.
    fn add(&self, other: &Self) -> Self;
    /// Difference.
    fn sub(&self, other: &Self) -> Self;
    /// Product.
    fn mul(&self, other: &Self) -> Self;
    /// Additive inverse.
    fn neg(&self) -> Self;
    /// A constant in the same context as `self` (`&self` supplies the
    /// modulus, so this deliberately breaks the `from_*` convention).
    #[allow(clippy::wrong_self_convention)]
    fn from_i64(&self, v: i64) -> Self;
    /// Whether this is the additive identity.
    fn is_zero(&self) -> bool;
}

/// An element of `Z_t`, carrying its modulus.
///
/// # Examples
///
/// ```
/// use quill::ring::{Ring, Zt};
///
/// let a = Zt::new(5, 17);
/// let b = a.from_i64(-3); // same modulus
/// assert_eq!(a.add(&b).value(), 2);
/// assert_eq!(a.mul(&b).value(), (5 * 14) % 17);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Zt {
    value: u64,
    modulus: u64,
}

impl Zt {
    /// A value mod `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t < 2`.
    pub fn new(value: u64, modulus: u64) -> Self {
        assert!(modulus >= 2, "modulus must be at least 2");
        Zt {
            value: value % modulus,
            modulus,
        }
    }

    /// The representative in `[0, t)`.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The modulus `t`.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Centered representative in `(-t/2, t/2]`.
    pub fn centered(&self) -> i64 {
        if self.value > self.modulus / 2 {
            self.value as i64 - self.modulus as i64
        } else {
            self.value as i64
        }
    }
}

impl Ring for Zt {
    fn add(&self, other: &Self) -> Self {
        debug_assert_eq!(self.modulus, other.modulus);
        Zt {
            value: (self.value + other.value) % self.modulus,
            modulus: self.modulus,
        }
    }

    fn sub(&self, other: &Self) -> Self {
        debug_assert_eq!(self.modulus, other.modulus);
        Zt {
            value: (self.value + self.modulus - other.value) % self.modulus,
            modulus: self.modulus,
        }
    }

    fn mul(&self, other: &Self) -> Self {
        debug_assert_eq!(self.modulus, other.modulus);
        Zt {
            value: ((self.value as u128 * other.value as u128) % self.modulus as u128) as u64,
            modulus: self.modulus,
        }
    }

    fn neg(&self) -> Self {
        Zt {
            value: (self.modulus - self.value) % self.modulus,
            modulus: self.modulus,
        }
    }

    fn from_i64(&self, v: i64) -> Self {
        Zt {
            value: v.rem_euclid(self.modulus as i64) as u64,
            modulus: self.modulus,
        }
    }

    fn is_zero(&self) -> bool {
        self.value == 0
    }
}

/// Builds a `Z_t` slot vector from signed values.
pub fn zt_vec(values: &[i64], modulus: u64) -> Vec<Zt> {
    values
        .iter()
        .map(|&v| Zt::new(v.rem_euclid(modulus as i64) as u64, modulus))
        .collect()
}

/// Extracts the unsigned values of a `Z_t` slot vector.
pub fn zt_values(slots: &[Zt]) -> Vec<u64> {
    slots.iter().map(|z| z.value()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_laws_hold() {
        let t = 65537;
        let a = Zt::new(123, t);
        let b = Zt::new(65000, t);
        let c = Zt::new(999, t);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        assert_eq!(a.add(&a.neg()), a.from_i64(0));
        assert_eq!(a.sub(&b), a.add(&b.neg()));
        assert!(a.from_i64(0).is_zero());
    }

    #[test]
    fn from_i64_handles_negatives() {
        let a = Zt::new(0, 17);
        assert_eq!(a.from_i64(-1).value(), 16);
        assert_eq!(a.from_i64(-17).value(), 0);
        assert_eq!(a.from_i64(35).value(), 1);
    }

    #[test]
    fn centered_representatives() {
        let t = 17;
        assert_eq!(Zt::new(8, t).centered(), 8);
        assert_eq!(Zt::new(9, t).centered(), -8);
        assert_eq!(Zt::new(16, t).centered(), -1);
    }

    #[test]
    fn vec_helpers_roundtrip() {
        let v = zt_vec(&[1, -1, 100], 65537);
        assert_eq!(zt_values(&v), vec![1, 65536, 100]);
    }
}
