//! Scheme identity and per-scheme instruction legality.
//!
//! Porcupine's middle- and back-end are generic over the HE scheme that
//! ultimately executes a kernel. Everything the *compiler* needs to know
//! about a scheme is captured by two small values:
//!
//! * [`SchemeId`] — which backend the pipeline targets. It parameterizes
//!   the cost model ([`crate::cost::LatencyModel::profiled_for`]), the
//!   legality rules below, the synthesis cache key, and the CLI/test
//!   surface (`--scheme`, `PORCUPINE_SCHEME`).
//! * [`SchemeLegality`] — which Quill instructions the backend can execute,
//!   consulted by [`crate::analysis::check_backend_legal_with`] and by the
//!   lowering passes when they decide whether inserting a `relin-ct` is
//!   even possible.
//!
//! Both shipped backends (BFV and BGV) implement the full Table-1
//! instruction set, so their legality rules coincide today; the structure
//! exists so a future partial backend (e.g. one without rotation keys)
//! degrades into a reported [`crate::analysis::LegalityError`] instead of a
//! panic deep inside an evaluator.

use crate::program::Instr;
use std::fmt;

/// Identifies one of the HE scheme backends the compiler can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchemeId {
    /// Brakerski/Fan–Vercauteren: `Δ = ⌊Q/t⌋` most-significant-digit
    /// encoding, scale-invariant multiply with an exact `t/Q` rescale.
    #[default]
    Bfv,
    /// Brakerski–Gentry–Vaikuntanathan: least-significant-digit (mod `t`)
    /// encoding, plain tensor multiply, noise managed by modulus switching.
    Bgv,
}

impl SchemeId {
    /// Every scheme the workspace ships, in display order.
    pub const ALL: &'static [SchemeId] = &[SchemeId::Bfv, SchemeId::Bgv];

    /// The lower-case name used by `--scheme`, `PORCUPINE_SCHEME`, the
    /// synthesis cache key, and benchmark JSON.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeId::Bfv => "bfv",
            SchemeId::Bgv => "bgv",
        }
    }

    /// Parses a scheme name (as accepted by `--scheme` / `PORCUPINE_SCHEME`).
    /// Returns `None` for unknown names — callers surface their own error.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "bfv" => Some(SchemeId::Bfv),
            "bgv" => Some(SchemeId::Bgv),
            _ => None,
        }
    }

    /// The instruction-legality rules of this scheme's backend.
    pub fn legality(&self) -> SchemeLegality {
        // Both in-repo backends implement the complete instruction set.
        match self {
            SchemeId::Bfv | SchemeId::Bgv => SchemeLegality::full(),
        }
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which Quill instructions a scheme backend can execute.
///
/// Additions, subtractions, and plaintext ops are universal across RLWE
/// schemes; the capabilities that can genuinely differ are the key-switching
/// ops (relinearization, rotation) and ciphertext–ciphertext multiply.
/// The ciphertext *size* discipline (rotation/multiply operands must be
/// size 2) is shared by every scheme and stays in
/// [`crate::analysis::check_backend_legal_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeLegality {
    /// The backend implements `relin-ct` (relinearization key switching).
    /// When `false`, the lowering passes must not insert `relin-ct`, and
    /// any ct×ct multiply whose size-3 result escapes is illegal.
    pub relin: bool,
    /// The backend implements `rot-ct` (Galois rotation key switching).
    pub rot: bool,
    /// The backend implements `mul-ct-ct`.
    pub mul_ct_ct: bool,
}

impl SchemeLegality {
    /// The full Table-1 instruction set (what BFV and BGV both support).
    pub fn full() -> Self {
        SchemeLegality {
            relin: true,
            rot: true,
            mul_ct_ct: true,
        }
    }

    /// Whether `instr` is executable at all on this backend (ignoring the
    /// operand-size discipline, which is checked separately).
    pub fn supports(&self, instr: &Instr) -> bool {
        match instr {
            Instr::Relin(_) => self.relin,
            Instr::RotCt(..) => self.rot,
            Instr::MulCtCt(..) => self.mul_ct_ct,
            Instr::AddCtCt(..)
            | Instr::SubCtCt(..)
            | Instr::AddCtPt(..)
            | Instr::SubCtPt(..)
            | Instr::MulCtPt(..) => true,
        }
    }

    /// Short display name of the instruction kind, for error messages.
    pub fn op_name(instr: &Instr) -> &'static str {
        match instr {
            Instr::AddCtCt(..) => "add-ct-ct",
            Instr::SubCtCt(..) => "sub-ct-ct",
            Instr::MulCtCt(..) => "mul-ct-ct",
            Instr::AddCtPt(..) => "add-ct-pt",
            Instr::SubCtPt(..) => "sub-ct-pt",
            Instr::MulCtPt(..) => "mul-ct-pt",
            Instr::RotCt(..) => "rot-ct",
            Instr::Relin(..) => "relin-ct",
        }
    }
}

impl Default for SchemeLegality {
    fn default() -> Self {
        SchemeLegality::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ValRef;

    #[test]
    fn parse_round_trips_every_scheme() {
        for &s in SchemeId::ALL {
            assert_eq!(SchemeId::parse(s.name()), Some(s));
            assert_eq!(SchemeId::parse(&s.name().to_uppercase()), Some(s));
        }
        assert_eq!(SchemeId::parse("ckks"), None);
        assert_eq!(SchemeId::parse(""), None);
    }

    #[test]
    fn default_scheme_is_bfv() {
        assert_eq!(SchemeId::default(), SchemeId::Bfv);
    }

    #[test]
    fn shipped_schemes_support_the_full_instruction_set() {
        let instrs = [
            Instr::AddCtCt(ValRef::Input(0), ValRef::Input(0)),
            Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0)),
            Instr::RotCt(ValRef::Input(0), 1),
            Instr::Relin(ValRef::Input(0)),
        ];
        for &s in SchemeId::ALL {
            let legality = s.legality();
            for i in &instrs {
                assert!(
                    legality.supports(i),
                    "{s} must support {}",
                    SchemeLegality::op_name(i)
                );
            }
        }
    }

    #[test]
    fn partial_backends_report_unsupported_ops() {
        let no_relin = SchemeLegality {
            relin: false,
            ..SchemeLegality::full()
        };
        assert!(!no_relin.supports(&Instr::Relin(ValRef::Input(0))));
        assert!(no_relin.supports(&Instr::MulCtCt(ValRef::Input(0), ValRef::Input(0))));
        let no_rot = SchemeLegality {
            rot: false,
            ..SchemeLegality::full()
        };
        assert!(!no_rot.supports(&Instr::RotCt(ValRef::Input(0), 1)));
    }
}
