//! Property-based tests for Quill: random programs must satisfy the
//! fundamental relationships between the concrete interpreter, the symbolic
//! interpreter, the depth analyses, and the surface syntax.

use proptest::prelude::*;
use quill::interp;
use quill::program::Program;
use quill::sexpr::{parse_program, to_string};
use test_support::T;

const N: usize = 6;

/// A random valid single-input program — the shared workspace generator,
/// which covers the full instruction set including `relin-ct` (placed only
/// over statically size-3 values).
fn arb_program(max_len: usize) -> impl Strategy<Value = Program> {
    test_support::arb_program(1, max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_validate(prog in arb_program(8)) {
        prop_assert!(prog.validate().is_ok());
    }

    #[test]
    fn symbolic_predicts_concrete(prog in arb_program(6),
                                  input in prop::collection::vec(0u64..T, N)) {
        let sym = interp::eval_symbolic(&prog, N, T);
        let conc = interp::eval_concrete(&prog, std::slice::from_ref(&input), &[], T);
        for (slot, poly) in sym.iter().enumerate() {
            let v = poly.eval(&|var| input[var as usize % N]);
            prop_assert_eq!(v, conc[slot], "slot {}", slot);
        }
    }

    #[test]
    fn sexpr_roundtrip(prog in arb_program(8)) {
        let printed = to_string(&prog);
        let reparsed = parse_program(&printed).expect("printed programs parse");
        prop_assert_eq!(reparsed, prog);
    }

    #[test]
    fn dce_preserves_semantics(prog in arb_program(8),
                               input in prop::collection::vec(0u64..T, N)) {
        let clean = prog.eliminate_dead_code();
        prop_assert!(clean.validate().is_ok());
        prop_assert!(clean.len() <= prog.len());
        let before = interp::eval_concrete(&prog, std::slice::from_ref(&input), &[], T);
        let after = interp::eval_concrete(&clean, &[input], &[], T);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn cse_preserves_semantics(prog in arb_program(8),
                               input in prop::collection::vec(0u64..T, N)) {
        let merged = prog.cse();
        prop_assert!(merged.validate().is_ok());
        prop_assert!(merged.len() <= prog.len());
        let before = interp::eval_concrete(&prog, std::slice::from_ref(&input), &[], T);
        let after = interp::eval_concrete(&merged, &[input], &[], T);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn mult_depth_bounds_logic_depth(prog in arb_program(8)) {
        prop_assert!((prog.mult_depth() as usize) <= prog.logic_depth());
    }

    /// The static analyses agree with the IR rules: every `relin-ct` sits
    /// on a size-3 value and produces size 2, and the per-value level at
    /// the output is exactly the program's multiplicative depth.
    #[test]
    fn size_and_level_analyses_are_consistent(prog in arb_program(8)) {
        use quill::program::{Instr, ValRef};
        let sizes = quill::analysis::ct_sizes(&prog);
        let levels = quill::analysis::ct_levels(&prog);
        for (i, instr) in prog.instrs.iter().enumerate() {
            if let Instr::Relin(a) = instr {
                prop_assert_eq!(quill::analysis::size_of(&sizes, *a), 3);
                prop_assert_eq!(sizes[i], 2);
            }
        }
        let out_level = match prog.output {
            ValRef::Input(_) => 0,
            ValRef::Instr(j) => levels[j],
        };
        prop_assert_eq!(out_level, prog.mult_depth());
    }

    #[test]
    fn rotation_by_n_is_identity(input in prop::collection::vec(0u64..T, N)) {
        let rotated = interp::rotate_left(&input, N as i64);
        prop_assert_eq!(rotated, input);
    }

    #[test]
    fn rotations_compose(input in prop::collection::vec(0u64..T, N),
                         r1 in -10i64..10, r2 in -10i64..10) {
        let double = interp::rotate_left(&interp::rotate_left(&input, r1), r2);
        let single = interp::rotate_left(&input, r1 + r2);
        prop_assert_eq!(double, single);
    }
}
