//! Property-based tests for Quill: random programs must satisfy the
//! fundamental relationships between the concrete interpreter, the symbolic
//! interpreter, the depth analyses, and the surface syntax.

use proptest::prelude::*;
use quill::interp;
use quill::program::{Instr, Program, PtOperand, ValRef};
use quill::sexpr::{parse_program, to_string};
use test_support::T;

const N: usize = 6;

/// Strategy: a random valid straight-line program over one ct input.
fn arb_program(max_len: usize) -> impl Strategy<Value = Program> {
    prop::collection::vec((0u8..7, any::<u16>(), any::<u16>(), -5i64..=5), 1..max_len).prop_map(
        |steps| {
            let mut instrs: Vec<Instr> = Vec::new();
            for (op, a, b, r) in steps {
                let pick = |x: u16, bound: usize| -> ValRef {
                    let i = x as usize % (bound + 1);
                    if i == 0 {
                        ValRef::Input(0)
                    } else {
                        ValRef::Instr(i - 1)
                    }
                };
                let lhs = pick(a, instrs.len());
                let rhs = pick(b, instrs.len());
                let instr = match op {
                    0 => Instr::AddCtCt(lhs, rhs),
                    1 => Instr::SubCtCt(lhs, rhs),
                    2 => Instr::MulCtCt(lhs, rhs),
                    3 => Instr::AddCtPt(lhs, PtOperand::Splat(r)),
                    4 => Instr::SubCtPt(lhs, PtOperand::Splat(r)),
                    5 => Instr::MulCtPt(lhs, PtOperand::Splat(r)),
                    _ => Instr::RotCt(lhs, if r == 0 { 1 } else { r }),
                };
                instrs.push(instr);
            }
            let output = ValRef::Instr(instrs.len() - 1);
            Program::new("random", 1, 0, instrs, output)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_validate(prog in arb_program(8)) {
        prop_assert!(prog.validate().is_ok());
    }

    #[test]
    fn symbolic_predicts_concrete(prog in arb_program(6),
                                  input in prop::collection::vec(0u64..T, N)) {
        let sym = interp::eval_symbolic(&prog, N, T);
        let conc = interp::eval_concrete(&prog, std::slice::from_ref(&input), &[], T);
        for (slot, poly) in sym.iter().enumerate() {
            let v = poly.eval(&|var| input[var as usize % N]);
            prop_assert_eq!(v, conc[slot], "slot {}", slot);
        }
    }

    #[test]
    fn sexpr_roundtrip(prog in arb_program(8)) {
        let printed = to_string(&prog);
        let reparsed = parse_program(&printed).expect("printed programs parse");
        prop_assert_eq!(reparsed, prog);
    }

    #[test]
    fn dce_preserves_semantics(prog in arb_program(8),
                               input in prop::collection::vec(0u64..T, N)) {
        let clean = prog.eliminate_dead_code();
        prop_assert!(clean.validate().is_ok());
        prop_assert!(clean.len() <= prog.len());
        let before = interp::eval_concrete(&prog, std::slice::from_ref(&input), &[], T);
        let after = interp::eval_concrete(&clean, &[input], &[], T);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn cse_preserves_semantics(prog in arb_program(8),
                               input in prop::collection::vec(0u64..T, N)) {
        let merged = prog.cse();
        prop_assert!(merged.validate().is_ok());
        prop_assert!(merged.len() <= prog.len());
        let before = interp::eval_concrete(&prog, std::slice::from_ref(&input), &[], T);
        let after = interp::eval_concrete(&merged, &[input], &[], T);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn mult_depth_bounds_logic_depth(prog in arb_program(8)) {
        prop_assert!((prog.mult_depth() as usize) <= prog.logic_depth());
    }

    #[test]
    fn rotation_by_n_is_identity(input in prop::collection::vec(0u64..T, N)) {
        let rotated = interp::rotate_left(&input, N as i64);
        prop_assert_eq!(rotated, input);
    }

    #[test]
    fn rotations_compose(input in prop::collection::vec(0u64..T, N),
                         r1 in -10i64..10, r2 in -10i64..10) {
        let double = interp::rotate_left(&interp::rotate_left(&input, r1), r2);
        let single = interp::rotate_left(&input, r1 + r2);
        prop_assert_eq!(double, single);
    }
}
