//! Shared helpers for reference implementations.

use quill::ring::Ring;

/// Circular read: `v[i mod n]` for possibly-negative `i`. Reference
/// implementations use circular indexing so they are total over the packed
/// slot vector; output masks restrict verification to slots whose reads
/// stay in bounds, where circular and padded semantics coincide.
pub fn at<R: Ring>(v: &[R], i: isize) -> R {
    let n = v.len() as isize;
    v[i.rem_euclid(n) as usize].clone()
}

/// Weighted circular stencil: `Σ w_k · v[i + off_k]` at every slot `i`.
pub fn stencil<R: Ring>(v: &[R], taps: &[(isize, i64)]) -> Vec<R> {
    let template = &v[0];
    (0..v.len())
        .map(|i| {
            taps.iter().fold(template.from_i64(0), |acc, &(off, w)| {
                acc.add(&at(v, i as isize + off).mul(&template.from_i64(w)))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill::ring::{zt_vec, Zt};

    #[test]
    fn circular_reads_wrap() {
        let v = zt_vec(&[10, 20, 30], 97);
        assert_eq!(at(&v, -1), Zt::new(30, 97));
        assert_eq!(at(&v, 3), Zt::new(10, 97));
        assert_eq!(at(&v, 4), Zt::new(20, 97));
    }

    #[test]
    fn stencil_applies_weights() {
        let v = zt_vec(&[1, 2, 3, 4], 97);
        // out[i] = v[i] - v[i+1]
        let out = stencil(&v, &[(0, 1), (1, -1)]);
        assert_eq!(out[0], Zt::new(96, 97)); // 1-2 = -1
        assert_eq!(out[3], Zt::new(3, 97)); // 4-1 = 3
    }
}
