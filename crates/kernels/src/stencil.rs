//! Image stencil kernels: box blur, the x/y Sobel gradients (Gx/Gy), and
//! Roberts cross — the Figure 5/6/7 case studies.
//!
//! Images are packed row-major with one ring of zero padding
//! ([`porcupine::layout::PaddedImage`]); rotation holes use the §6.1
//! sliding-window restriction. All kernels are parameterized by the layout
//! so the same constructors synthesize for any image width (the paper's
//! examples use a 3×3 interior → 5×5 packed model).

use crate::reduction::T;
use crate::util::stencil;
use crate::PaperKernel;
use porcupine::layout::PaddedImage;
use porcupine::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
use porcupine::spec::{GenericReference, KernelSpec};
use quill::program::PtOperand;
use quill::ring::Ring;
use quill::sexpr::parse_program;

/// The default model layout from the paper's examples: 3×3 interior with a
/// 1-pixel zero ring (5×5 = 25 slots, stride 5).
pub fn default_image() -> PaddedImage {
    PaddedImage::new(3, 3, 1)
}

struct Stencil {
    taps: Vec<(isize, i64)>,
}

impl GenericReference for Stencil {
    fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
        stencil(&ct[0], &self.taps)
    }
}

/// Mask of slots whose window reads `[lo, hi]` (flat offsets) stay inside
/// the packed vector, so circular and padded semantics agree.
fn bounded_mask(slots: usize, lo: isize, hi: isize) -> Vec<bool> {
    (0..slots as isize)
        .map(|i| i + lo >= 0 && i + hi < slots as isize)
        .collect()
}

/// 2×2 box blur (Figure 5): `out[i] = x[i] + x[i+1] + x[i+W] + x[i+W+1]`.
pub fn box_blur(img: PaddedImage) -> PaperKernel {
    let w = img.stride() as isize;
    let taps = vec![(0, 1), (1, 1), (w, 1), (w + 1, 1)];
    let spec = KernelSpec::new(
        "box-blur",
        img.slots(),
        1,
        0,
        bounded_mask(img.slots(), 0, w + 1),
        T,
        Box::new(Stencil { taps }),
    );
    let sketch = Sketch::new(
        vec![SketchOp::rotated(ArithOp::AddCtCt)],
        RotationSet::Window {
            stride: w as i64,
            radius: 1,
        },
        3,
    );
    // Figure 5(b): depth-minimized baseline — align all four window
    // elements, then a balanced add tree. 6 instructions, depth 3.
    let baseline = parse_program(&format!(
        "(kernel box-blur-baseline (inputs (ct 1) (pt 0))
           (let c1 (rot-ct c0 1))
           (let c2 (rot-ct c0 {w}))
           (let c3 (rot-ct c0 {}))
           (let c4 (add-ct-ct c1 c0))
           (let c5 (add-ct-ct c2 c3))
           (let c6 (add-ct-ct c4 c5))
           (return c6))",
        w + 1
    ))
    .expect("baseline source is valid");
    PaperKernel {
        name: "box-blur",
        spec,
        sketch,
        baseline,
    }
}

/// Sobel x-gradient (Figures 6/7): weights `[[-1,0,1],[-2,0,2],[-1,0,1]]`.
pub fn gx(img: PaddedImage) -> PaperKernel {
    let w = img.stride() as isize;
    let taps = vec![
        (-w - 1, -1),
        (-w + 1, 1),
        (-1, -2),
        (1, 2),
        (w - 1, -1),
        (w + 1, 1),
    ];
    let spec = KernelSpec::new(
        "gx",
        img.slots(),
        1,
        0,
        bounded_mask(img.slots(), -w - 1, w + 1),
        T,
        Box::new(Stencil { taps }),
    );
    let sketch = gradient_sketch(w);
    let baseline = gradient_baseline("gx-baseline", &[-w - 1, -w + 1, -1, 1, w - 1, w + 1]);
    PaperKernel {
        name: "gx",
        spec,
        sketch,
        baseline,
    }
}

/// Sobel y-gradient: weights `[[-1,-2,-1],[0,0,0],[1,2,1]]`.
pub fn gy(img: PaddedImage) -> PaperKernel {
    let w = img.stride() as isize;
    let taps = vec![
        (-w - 1, -1),
        (-w, -2),
        (-w + 1, -1),
        (w - 1, 1),
        (w, 2),
        (w + 1, 1),
    ];
    let spec = KernelSpec::new(
        "gy",
        img.slots(),
        1,
        0,
        bounded_mask(img.slots(), -w - 1, w + 1),
        T,
        Box::new(Stencil { taps }),
    );
    let sketch = gradient_sketch(w);
    let baseline = gradient_baseline("gy-baseline", &[-w - 1, w - 1, -w, w, -w + 1, w + 1]);
    PaperKernel {
        name: "gy",
        spec,
        sketch,
        baseline,
    }
}

/// The paper's Gx sketch (§4.4): add/sub components with window-restricted
/// rotation holes plus a multiply-by-2 with a plain hole.
fn gradient_sketch(stride: isize) -> Sketch {
    Sketch::new(
        vec![
            SketchOp::rotated(ArithOp::AddCtCt),
            SketchOp::rotated(ArithOp::SubCtCt),
            SketchOp::plain(ArithOp::MulCtPt(PtOperand::Splat(2))),
        ],
        RotationSet::Window {
            stride: stride as i64,
            radius: 1,
        },
        4,
    )
}

/// Depth-minimized gradient baseline (12 instructions, depth 4, as in
/// Figure 6b): rotate the six weighted neighbours into place, pair them
/// into three subtractions, double the centre pair with an addition, and
/// combine in a balanced tree. `offsets` lists the six taps in the order
/// (−1-weight, +1-weight) × 3 pairs, centre pair in the middle.
fn gradient_baseline(name: &str, offsets: &[isize; 6]) -> quill::program::Program {
    let src = format!(
        "(kernel {name} (inputs (ct 1) (pt 0))
           (let c1 (rot-ct c0 {o0}))
           (let c2 (rot-ct c0 {o1}))
           (let c3 (rot-ct c0 {o2}))
           (let c4 (rot-ct c0 {o3}))
           (let c5 (rot-ct c0 {o4}))
           (let c6 (rot-ct c0 {o5}))
           (let c7 (sub-ct-ct c2 c1))
           (let c8 (sub-ct-ct c4 c3))
           (let c9 (sub-ct-ct c6 c5))
           (let c10 (add-ct-ct c7 c9))
           (let c11 (add-ct-ct c8 c8))
           (let c12 (add-ct-ct c10 c11))
           (return c12))",
        o0 = offsets[0],
        o1 = offsets[1],
        o2 = offsets[2],
        o3 = offsets[3],
        o4 = offsets[4],
        o5 = offsets[5],
    );
    parse_program(&src).expect("baseline source is valid")
}

/// Roberts cross edge detector on a 2×2 window:
/// `out[i] = (x[i] − x[i+W+1])² + (x[i+1] − x[i+W])²`.
pub fn roberts_cross(img: PaddedImage) -> PaperKernel {
    let w = img.stride() as isize;
    let spec = KernelSpec::new(
        "roberts-cross",
        img.slots(),
        1,
        0,
        bounded_mask(img.slots(), 0, w + 1),
        T,
        Box::new(RobertsCross { w }),
    );
    // §6.1 sliding-window restriction: the kernel only touches the 2×2
    // window, so rotations are restricted to {1, W, W+1}.
    let sketch = Sketch::new(
        vec![
            SketchOp::rotated(ArithOp::SubCtCt),
            SketchOp::plain(ArithOp::MulCtCt),
            SketchOp::plain(ArithOp::AddCtCt),
        ],
        RotationSet::Explicit(vec![1, w as i64, w as i64 + 1]),
        5,
    );
    let baseline = parse_program(&format!(
        "(kernel roberts-cross-baseline (inputs (ct 1) (pt 0))
           (let c1 (rot-ct c0 {d}))
           (let c2 (rot-ct c0 1))
           (let c3 (rot-ct c0 {w}))
           (let c4 (sub-ct-ct c0 c1))
           (let c5 (sub-ct-ct c2 c3))
           (let c6 (mul-ct-ct c4 c4))
           (let c7 (mul-ct-ct c5 c5))
           (let c8 (add-ct-ct c6 c7))
           (return c8))",
        d = w + 1,
    ))
    .expect("baseline source is valid");
    PaperKernel {
        name: "roberts-cross",
        spec,
        sketch,
        baseline,
    }
}

struct RobertsCross {
    w: isize,
}

impl GenericReference for RobertsCross {
    fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
        let x = &ct[0];
        (0..x.len())
            .map(|i| {
                let i = i as isize;
                let d1 = crate::util::at(x, i).sub(&crate::util::at(x, i + self.w + 1));
                let d2 = crate::util::at(x, i + 1).sub(&crate::util::at(x, i + self.w));
                d1.mul(&d1).add(&d2.mul(&d2))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use porcupine::lift::check_padding_stable;
    use porcupine::verify::verify;
    use rand::SeedableRng;

    fn kernels() -> Vec<PaperKernel> {
        let img = default_image();
        vec![box_blur(img), gx(img), gy(img), roberts_cross(img)]
    }

    #[test]
    fn baselines_verify_against_specs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for k in kernels() {
            verify(&k.baseline, &k.spec, &mut rng)
                .unwrap_or_else(|e| panic!("{} baseline: {e}", k.name));
        }
    }

    #[test]
    fn baselines_are_padding_stable() {
        for k in kernels() {
            check_padding_stable(&k.baseline, k.spec.n, &k.spec.output_mask, T)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn baseline_sizes_match_table2() {
        let img = default_image();
        assert_eq!(box_blur(img).baseline.len(), 6, "Table 2: box blur 6");
        assert_eq!(box_blur(img).baseline.logic_depth(), 3, "Table 2: depth 3");
        assert_eq!(gx(img).baseline.len(), 12, "Table 2: Gx 12");
        assert_eq!(gx(img).baseline.logic_depth(), 4, "Table 2: depth 4");
        assert_eq!(gy(img).baseline.len(), 12, "Table 2: Gy 12");
        assert_eq!(gy(img).baseline.logic_depth(), 4);
    }

    #[test]
    fn figure_6a_program_verifies_as_gx() {
        // The paper's synthesized Gx (Figure 6a) must satisfy our Gx spec.
        let prog = parse_program(
            "(kernel gx (inputs (ct 1) (pt 0))
               (let c1 (rot-ct c0 -5))
               (let c2 (add-ct-ct c0 c1))
               (let c3 (rot-ct c2 5))
               (let c4 (add-ct-ct c2 c3))
               (let c5 (rot-ct c4 -1))
               (let c6 (rot-ct c4 1))
               (let c7 (sub-ct-ct c6 c5))
               (return c7))",
        )
        .unwrap();
        let k = gx(default_image());
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        verify(&prog, &k.spec, &mut rng).expect("Figure 6a implements Gx");
    }

    #[test]
    fn figure_5a_program_verifies_as_box_blur() {
        let prog = parse_program(
            "(kernel box-blur (inputs (ct 1) (pt 0))
               (let c1 (rot-ct c0 1))
               (let c2 (add-ct-ct c0 c1))
               (let c3 (rot-ct c2 5))
               (let c4 (add-ct-ct c2 c3))
               (return c4))",
        )
        .unwrap();
        let k = box_blur(default_image());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        verify(&prog, &k.spec, &mut rng).expect("Figure 5a implements box blur");
    }

    #[test]
    fn roberts_reference_on_an_edge() {
        let img = default_image();
        let k = roberts_cross(img);
        // vertical edge: left column dark, right bright
        let pixels = vec![0, 9, 9, 0, 9, 9, 0, 9, 9];
        let slots = img.pack(&pixels);
        let out = k.spec.eval_concrete(&[slots], &[]);
        // at interior pixel (1,1)=slot 12? gradient across the edge is nonzero
        let idx = img.index(1, 0);
        assert_ne!(out[idx], 0);
    }

    #[test]
    fn larger_images_are_supported() {
        let img = PaddedImage::new(6, 6, 1); // 8×8 packed, stride 8
        let k = gx(img);
        assert_eq!(k.spec.n, 64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        verify(&k.baseline, &k.spec, &mut rng).expect("stride-8 baseline verifies");
    }
}
