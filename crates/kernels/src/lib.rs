//! # porcupine-kernels — the paper's evaluation workloads
//!
//! The nine kernels of Table 2/3 plus the two multi-step applications
//! (Sobel, Harris) from §7.2, each bundled as a [`PaperKernel`]:
//!
//! * a **specification** — generic reference implementation + layout mask,
//! * a **sketch** — the local-rotate template with §6.1 rotation
//!   restrictions, written the way the paper's users would,
//! * a **hand-written baseline** — the depth-minimized expert
//!   implementation Porcupine is compared against (§7.1).
//!
//! | kernel | constructor | paper size |
//! |---|---|---|
//! | Box blur | [`stencil::box_blur`] | 5×5 packed image |
//! | Dot product | [`reduction::dot_product`] | 8 elements |
//! | Hamming distance | [`reduction::hamming_distance`] | 4 elements |
//! | L2 distance | [`reduction::l2_distance`] | 8 elements |
//! | Linear regression | [`pointwise::linear_regression`] | batch of 8 |
//! | Polynomial regression | [`pointwise::polynomial_regression`] | batch of 8 |
//! | Gx / Gy | [`stencil::gx`] / [`stencil::gy`] | 5×5 packed image |
//! | Roberts cross | [`stencil::roberts_cross`] | 5×5 packed image |
//! | Sobel / Harris | [`composite`] | multi-step |

use porcupine::sketch::Sketch;
use porcupine::spec::KernelSpec;
use quill::program::Program;

pub mod composite;
pub mod pointwise;
pub mod reduction;
pub mod stencil;
pub mod util;

/// One paper workload: specification, sketch, and hand-written baseline.
pub struct PaperKernel {
    /// Kernel name (matches Figure 4 / Tables 2–3).
    pub name: &'static str,
    /// What the kernel must compute.
    pub spec: KernelSpec,
    /// The synthesis template.
    pub sketch: Sketch,
    /// The depth-minimized expert implementation.
    pub baseline: Program,
}

impl std::fmt::Debug for PaperKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PaperKernel")
            .field("name", &self.name)
            .field("baseline_len", &self.baseline.len())
            .finish()
    }
}

/// The nine directly synthesized kernels at the paper's sizes, in Figure 4
/// order.
pub fn all_direct() -> Vec<PaperKernel> {
    DIRECT_NAMES
        .iter()
        .map(|name| direct_kernel(name, None).expect("registry names are valid"))
        .collect()
}

/// The names of the nine direct kernels, in Figure 4 order.
pub const DIRECT_NAMES: [&str; 9] = [
    "box-blur",
    "dot-product",
    "hamming-distance",
    "l2-distance",
    "linear-regression",
    "polynomial-regression",
    "gx",
    "gy",
    "roberts-cross",
];

/// Looks up a direct kernel by name at a chosen size (`None` = the paper's
/// size). Every constructor is size-generic, so this is the single entry
/// point for "the paper's kernel, but bigger":
///
/// * image kernels (`box-blur`, `gx`, `gy`, `roberts-cross`): `size` is
///   the square interior width — `size = 8` models an 8×8 image (10×10
///   packed with the zero ring);
/// * reductions (`dot-product`, `hamming-distance`, `l2-distance`):
///   `size` is the element count and must be a power of two (the
///   reduction tree halves);
/// * batched models (`linear-regression`, `polynomial-regression`):
///   `size` is the batch width.
///
/// Returns `None` for unknown names or a size the kernel cannot take.
pub fn direct_kernel(name: &str, size: Option<usize>) -> Option<PaperKernel> {
    let img = |default: usize| {
        porcupine::layout::PaddedImage::new(size.unwrap_or(default), size.unwrap_or(default), 1)
    };
    let pow2 = |default: usize| {
        let n = size.unwrap_or(default);
        (n >= 2 && n.is_power_of_two()).then_some(n)
    };
    Some(match name {
        "box-blur" => stencil::box_blur(img(3)),
        "gx" => stencil::gx(img(3)),
        "gy" => stencil::gy(img(3)),
        "roberts-cross" => stencil::roberts_cross(img(3)),
        "dot-product" => reduction::dot_product(pow2(8)?),
        "hamming-distance" => reduction::hamming_distance(pow2(4)?),
        "l2-distance" => reduction::l2_distance(pow2(8)?),
        "linear-regression" => pointwise::linear_regression(size.unwrap_or(8)),
        "polynomial-regression" => pointwise::polynomial_regression(size.unwrap_or(8)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_consistent() {
        let kernels = all_direct();
        assert_eq!(kernels.len(), 9);
        for k in &kernels {
            assert!(k.baseline.validate().is_ok(), "{}", k.name);
            assert_eq!(k.spec.output_mask.len(), k.spec.n, "{}", k.name);
            assert!(!k.sketch.ops.is_empty(), "{}", k.name);
        }
    }

    #[test]
    fn sized_kernels_verify_at_nondefault_sizes() {
        use porcupine::verify::verify;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for (name, size) in [
            ("dot-product", 64),
            ("box-blur", 8),
            ("gx", 6),
            ("hamming-distance", 8),
            ("linear-regression", 16),
        ] {
            let k = direct_kernel(name, Some(size)).expect("sized kernel exists");
            verify(&k.baseline, &k.spec, &mut rng)
                .unwrap_or_else(|e| panic!("{name} at size {size}: {e}"));
        }
    }

    #[test]
    fn direct_kernel_rejects_bad_names_and_sizes() {
        assert!(direct_kernel("no-such-kernel", None).is_none());
        // Reductions need a power-of-two length.
        assert!(direct_kernel("dot-product", Some(12)).is_none());
        assert!(direct_kernel("dot-product", Some(16)).is_some());
    }

    #[test]
    fn names_are_unique() {
        let kernels = all_direct();
        let mut names: Vec<&str> = kernels.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
