//! # porcupine-kernels — the paper's evaluation workloads
//!
//! The nine kernels of Table 2/3 plus the two multi-step applications
//! (Sobel, Harris) from §7.2, each bundled as a [`PaperKernel`]:
//!
//! * a **specification** — generic reference implementation + layout mask,
//! * a **sketch** — the local-rotate template with §6.1 rotation
//!   restrictions, written the way the paper's users would,
//! * a **hand-written baseline** — the depth-minimized expert
//!   implementation Porcupine is compared against (§7.1).
//!
//! | kernel | constructor | paper size |
//! |---|---|---|
//! | Box blur | [`stencil::box_blur`] | 5×5 packed image |
//! | Dot product | [`reduction::dot_product`] | 8 elements |
//! | Hamming distance | [`reduction::hamming_distance`] | 4 elements |
//! | L2 distance | [`reduction::l2_distance`] | 8 elements |
//! | Linear regression | [`pointwise::linear_regression`] | batch of 8 |
//! | Polynomial regression | [`pointwise::polynomial_regression`] | batch of 8 |
//! | Gx / Gy | [`stencil::gx`] / [`stencil::gy`] | 5×5 packed image |
//! | Roberts cross | [`stencil::roberts_cross`] | 5×5 packed image |
//! | Sobel / Harris | [`composite`] | multi-step |

use porcupine::sketch::Sketch;
use porcupine::spec::KernelSpec;
use quill::program::Program;

pub mod composite;
pub mod pointwise;
pub mod reduction;
pub mod stencil;
pub mod util;

/// One paper workload: specification, sketch, and hand-written baseline.
pub struct PaperKernel {
    /// Kernel name (matches Figure 4 / Tables 2–3).
    pub name: &'static str,
    /// What the kernel must compute.
    pub spec: KernelSpec,
    /// The synthesis template.
    pub sketch: Sketch,
    /// The depth-minimized expert implementation.
    pub baseline: Program,
}

impl std::fmt::Debug for PaperKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PaperKernel")
            .field("name", &self.name)
            .field("baseline_len", &self.baseline.len())
            .finish()
    }
}

/// The nine directly synthesized kernels at the paper's sizes, in Figure 4
/// order.
pub fn all_direct() -> Vec<PaperKernel> {
    let img = stencil::default_image();
    vec![
        stencil::box_blur(img),
        reduction::dot_product(8),
        reduction::hamming_distance(4),
        reduction::l2_distance(8),
        pointwise::linear_regression(8),
        pointwise::polynomial_regression(8),
        stencil::gx(img),
        stencil::gy(img),
        stencil::roberts_cross(img),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_consistent() {
        let kernels = all_direct();
        assert_eq!(kernels.len(), 9);
        for k in &kernels {
            assert!(k.baseline.validate().is_ok(), "{}", k.name);
            assert_eq!(k.spec.output_mask.len(), k.spec.n, "{}", k.name);
            assert!(!k.sketch.ops.is_empty(), "{}", k.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let kernels = all_direct();
        let mut names: Vec<&str> = kernels.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
