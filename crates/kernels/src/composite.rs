//! Multi-step applications (§6.3, §7.2): the Sobel operator and the Harris
//! corner detector, composed from independently synthesized kernels at
//! their natural break points.
//!
//! Per §7.1, operations HE cannot express are computed "up to a branch":
//! Sobel returns the squared gradient magnitude `Gx² + Gy²` (no square
//! root) and Harris returns the response map (the client thresholds after
//! decryption). Harris uses `k = 1/16`, so the returned response is scaled
//! by 16: `R·16 = 16·(det M) − (trace M)²`.

use crate::reduction::T;
use crate::stencil;
use crate::util::stencil as stencil_taps;
use crate::PaperKernel;
use porcupine::layout::PaddedImage;
use porcupine::multistep::PipelineBuilder;
use porcupine::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
use porcupine::spec::{GenericReference, KernelSpec};
use quill::program::{Program, PtOperand, ValRef};
use quill::ring::Ring;
use quill::sexpr::parse_program;

/// Mask of slots whose flat reads `[lo, hi]` stay in bounds.
fn bounded_mask(slots: usize, lo: isize, hi: isize) -> Vec<bool> {
    (0..slots as isize)
        .map(|i| i + lo >= 0 && i + hi < slots as isize)
        .collect()
}

// ---------------------------------------------------------------- Sobel --

/// The Sobel combine stage: `out = a² + b²` (synthesizable at L = 3).
pub fn sobel_combine(n: usize) -> PaperKernel {
    struct Combine;
    impl GenericReference for Combine {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            ct[0]
                .iter()
                .zip(&ct[1])
                .map(|(a, b)| a.mul(a).add(&b.mul(b)))
                .collect()
        }
    }
    let spec = KernelSpec::new("sobel-combine", n, 2, 0, vec![], T, Box::new(Combine));
    let sketch = Sketch::new(
        vec![
            SketchOp::plain(ArithOp::MulCtCt),
            SketchOp::plain(ArithOp::AddCtCt),
        ],
        RotationSet::Explicit(Vec::new()),
        3,
    );
    let baseline = parse_program(
        "(kernel sobel-combine-baseline (inputs (ct 2) (pt 0))
           (let c2 (mul-ct-ct c0 c0))
           (let c3 (mul-ct-ct c1 c1))
           (let c4 (add-ct-ct c2 c3))
           (return c4))",
    )
    .expect("baseline source is valid");
    PaperKernel {
        name: "sobel-combine",
        spec,
        sketch,
        baseline,
    }
}

/// Stitches Gx, Gy, and a combine stage into the full Sobel operator.
pub fn sobel_from(gx: &Program, gy: &Program, combine: &Program) -> Program {
    let mut b = PipelineBuilder::new("sobel", 1, 0);
    let ix = b.add_stage(gx, &[ValRef::Input(0)], &[]);
    let iy = b.add_stage(gy, &[ValRef::Input(0)], &[]);
    let out = b.add_stage(combine, &[ix, iy], &[]);
    b.finish(out)
}

/// Whole-pipeline Sobel specification (for end-to-end verification).
pub fn sobel_spec(img: PaddedImage) -> KernelSpec {
    struct Sobel {
        w: isize,
    }
    impl GenericReference for Sobel {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            let w = self.w;
            let gx = stencil_taps(
                &ct[0],
                &[
                    (-w - 1, -1),
                    (-w + 1, 1),
                    (-1, -2),
                    (1, 2),
                    (w - 1, -1),
                    (w + 1, 1),
                ],
            );
            let gy = stencil_taps(
                &ct[0],
                &[
                    (-w - 1, -1),
                    (-w, -2),
                    (-w + 1, -1),
                    (w - 1, 1),
                    (w, 2),
                    (w + 1, 1),
                ],
            );
            gx.iter()
                .zip(&gy)
                .map(|(a, b)| a.mul(a).add(&b.mul(b)))
                .collect()
        }
    }
    let w = img.stride() as isize;
    KernelSpec::new(
        "sobel",
        img.slots(),
        1,
        0,
        bounded_mask(img.slots(), -w - 1, w + 1),
        T,
        Box::new(Sobel { w }),
    )
}

/// The monolithic hand-written Sobel baseline: baseline gradients plus the
/// combine baseline, with shared rotations merged (31 instructions in the
/// paper's count; ours shares four gradient rotations).
pub fn sobel_baseline(img: PaddedImage) -> Program {
    let gxb = stencil::gx(img).baseline;
    let gyb = stencil::gy(img).baseline;
    let cb = sobel_combine(img.slots()).baseline;
    let mut b = PipelineBuilder::new("sobel-baseline", 1, 0);
    let ix = b.add_stage(&gxb, &[ValRef::Input(0)], &[]);
    let iy = b.add_stage(&gyb, &[ValRef::Input(0)], &[]);
    let out = b.add_stage(&cb, &[ix, iy], &[]);
    b.finish(out)
}

// --------------------------------------------------------------- Harris --

/// Elementwise product stage (`out = a · b`), used for `Ix·Iy`.
pub fn mul_stage() -> Program {
    parse_program(
        "(kernel mul-stage (inputs (ct 2) (pt 0))
           (let c2 (mul-ct-ct c0 c1))
           (return c2))",
    )
    .expect("static program is valid")
}

/// Elementwise square stage (`out = a²`), used for `Ix²` and `Iy²`.
pub fn square_stage() -> Program {
    parse_program(
        "(kernel square-stage (inputs (ct 1) (pt 0))
           (let c1 (mul-ct-ct c0 c0))
           (return c1))",
    )
    .expect("static program is valid")
}

/// Harris determinant stage: `out = 16·(A·B − C²)` (synthesizable at L = 4).
pub fn harris_det(n: usize) -> PaperKernel {
    struct Det;
    impl GenericReference for Det {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            (0..ct[0].len())
                .map(|i| {
                    let (a, b, c) = (&ct[0][i], &ct[1][i], &ct[2][i]);
                    a.mul(b).sub(&c.mul(c)).mul(&a.from_i64(16))
                })
                .collect()
        }
    }
    let spec = KernelSpec::new("harris-det", n, 3, 0, vec![], T, Box::new(Det));
    let sketch = Sketch::new(
        vec![
            SketchOp::plain(ArithOp::MulCtCt),
            SketchOp::plain(ArithOp::SubCtCt),
            SketchOp::plain(ArithOp::MulCtPt(PtOperand::Splat(16))),
        ],
        RotationSet::Explicit(Vec::new()),
        4,
    );
    let baseline = parse_program(
        "(kernel harris-det-baseline (inputs (ct 3) (pt 0))
           (let c3 (mul-ct-ct c0 c1))
           (let c4 (mul-ct-ct c2 c2))
           (let c5 (sub-ct-ct c3 c4))
           (let c6 (mul-ct-pt c5 (splat 16)))
           (return c6))",
    )
    .expect("baseline source is valid");
    PaperKernel {
        name: "harris-det",
        spec,
        sketch,
        baseline,
    }
}

/// Harris trace stage: `out = D − (A + B)²` (synthesizable at L = 3).
pub fn harris_trace(n: usize) -> PaperKernel {
    struct Trace;
    impl GenericReference for Trace {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            (0..ct[0].len())
                .map(|i| {
                    let (a, b, d) = (&ct[0][i], &ct[1][i], &ct[2][i]);
                    let s = a.add(b);
                    d.sub(&s.mul(&s))
                })
                .collect()
        }
    }
    let spec = KernelSpec::new("harris-trace", n, 3, 0, vec![], T, Box::new(Trace));
    let sketch = Sketch::new(
        vec![
            SketchOp::plain(ArithOp::AddCtCt),
            SketchOp::plain(ArithOp::MulCtCt),
            SketchOp::plain(ArithOp::SubCtCt),
        ],
        RotationSet::Explicit(Vec::new()),
        3,
    );
    let baseline = parse_program(
        "(kernel harris-trace-baseline (inputs (ct 3) (pt 0))
           (let c3 (add-ct-ct c0 c1))
           (let c4 (mul-ct-ct c3 c3))
           (let c5 (sub-ct-ct c2 c4))
           (return c5))",
    )
    .expect("baseline source is valid");
    PaperKernel {
        name: "harris-trace",
        spec,
        sketch,
        baseline,
    }
}

/// Pieces composing a Harris pipeline: the three stencils plus the response
/// stages (each slot can independently be a baseline or synthesized
/// program).
#[derive(Debug, Clone)]
pub struct HarrisStages {
    /// x-gradient.
    pub gx: Program,
    /// y-gradient.
    pub gy: Program,
    /// 2×2 box blur used for the structure-tensor sums.
    pub blur: Program,
    /// `16·(A·B − C²)`.
    pub det: Program,
    /// `D − (A+B)²`.
    pub trace: Program,
}

/// Stitches the full Harris corner detector from its stages.
pub fn harris_from(stages: &HarrisStages) -> Program {
    let mut b = PipelineBuilder::new("harris", 1, 0);
    let input = ValRef::Input(0);
    let ix = b.add_stage(&stages.gx, &[input], &[]);
    let iy = b.add_stage(&stages.gy, &[input], &[]);
    let ixx = b.add_stage(&square_stage(), &[ix], &[]);
    let iyy = b.add_stage(&square_stage(), &[iy], &[]);
    let ixy = b.add_stage(&mul_stage(), &[ix, iy], &[]);
    let sxx = b.add_stage(&stages.blur, &[ixx], &[]);
    let syy = b.add_stage(&stages.blur, &[iyy], &[]);
    let sxy = b.add_stage(&stages.blur, &[ixy], &[]);
    let det = b.add_stage(&stages.det, &[sxx, syy, sxy], &[]);
    let resp = b.add_stage(&stages.trace, &[sxx, syy, det], &[]);
    b.finish(resp)
}

/// The hand-written monolithic Harris baseline (every stage is its
/// depth-minimized baseline).
pub fn harris_baseline(img: PaddedImage) -> Program {
    let mut p = harris_from(&HarrisStages {
        gx: stencil::gx(img).baseline,
        gy: stencil::gy(img).baseline,
        blur: stencil::box_blur(img).baseline,
        det: harris_det(img.slots()).baseline,
        trace: harris_trace(img.slots()).baseline,
    });
    p.name = "harris-baseline".into();
    p
}

/// Whole-pipeline Harris specification (for end-to-end verification).
pub fn harris_spec(img: PaddedImage) -> KernelSpec {
    struct Harris {
        w: isize,
    }
    impl GenericReference for Harris {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            let w = self.w;
            let gx = stencil_taps(
                &ct[0],
                &[
                    (-w - 1, -1),
                    (-w + 1, 1),
                    (-1, -2),
                    (1, 2),
                    (w - 1, -1),
                    (w + 1, 1),
                ],
            );
            let gy = stencil_taps(
                &ct[0],
                &[
                    (-w - 1, -1),
                    (-w, -2),
                    (-w + 1, -1),
                    (w - 1, 1),
                    (w, 2),
                    (w + 1, 1),
                ],
            );
            let n = gx.len();
            let ixx: Vec<R> = gx.iter().map(|a| a.mul(a)).collect();
            let iyy: Vec<R> = gy.iter().map(|a| a.mul(a)).collect();
            let ixy: Vec<R> = gx.iter().zip(&gy).map(|(a, b)| a.mul(b)).collect();
            let blur_taps: [(isize, i64); 4] = [(0, 1), (1, 1), (w, 1), (w + 1, 1)];
            let sxx = stencil_taps(&ixx, &blur_taps);
            let syy = stencil_taps(&iyy, &blur_taps);
            let sxy = stencil_taps(&ixy, &blur_taps);
            (0..n)
                .map(|i| {
                    let det16 = sxx[i]
                        .mul(&syy[i])
                        .sub(&sxy[i].mul(&sxy[i]))
                        .mul(&sxx[i].from_i64(16));
                    let tr = sxx[i].add(&syy[i]);
                    det16.sub(&tr.mul(&tr))
                })
                .collect()
        }
    }
    let w = img.stride() as isize;
    KernelSpec::new(
        "harris",
        img.slots(),
        1,
        0,
        bounded_mask(img.slots(), -(w + 1), 2 * (w + 1)),
        T,
        Box::new(Harris { w }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use porcupine::verify::verify;
    use rand::SeedableRng;

    fn img() -> PaddedImage {
        stencil::default_image()
    }

    #[test]
    fn sobel_baseline_verifies_end_to_end() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let spec = sobel_spec(img());
        let baseline = sobel_baseline(img());
        verify(&baseline, &spec, &mut rng).expect("sobel baseline correct");
    }

    #[test]
    fn sobel_baseline_shares_gradient_rotations() {
        let b = sobel_baseline(img());
        // 12 + 12 + 3 minus the four shared corner rotations.
        assert_eq!(b.len(), 23);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn harris_baseline_verifies_end_to_end() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let spec = harris_spec(img());
        let baseline = harris_baseline(img());
        verify(&baseline, &spec, &mut rng).expect("harris baseline correct");
    }

    #[test]
    fn harris_baseline_size_is_paper_scale() {
        let b = harris_baseline(img());
        // The paper's monolithic baseline is 59 instructions; ours lands in
        // the same regime after CSE of shared gradient rotations.
        assert!(b.len() >= 40 && b.len() <= 60, "got {}", b.len());
        assert!(b.mult_depth() >= 2);
    }

    #[test]
    fn stage_kernels_verify() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let n = img().slots();
        for k in [sobel_combine(n), harris_det(n), harris_trace(n)] {
            verify(&k.baseline, &k.spec, &mut rng)
                .unwrap_or_else(|e| panic!("{} baseline: {e}", k.name));
        }
    }

    #[test]
    fn harris_response_distinguishes_corner_from_flat() {
        // A bright corner patch should produce a different response than a
        // flat region — sanity on the reference itself, over Z_t.
        let spec = harris_spec(img());
        let corner = img().pack(&[9, 9, 0, 9, 9, 0, 0, 0, 0]);
        let flat = img().pack(&[5, 5, 5, 5, 5, 5, 5, 5, 5]);
        let rc = spec.eval_concrete(&[corner], &[]);
        let rf = spec.eval_concrete(&[flat], &[]);
        let center = img().index(1, 1);
        assert_ne!(rc[center], rf[center]);
    }
}
