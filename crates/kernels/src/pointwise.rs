//! Pointwise model-evaluation kernels: linear and polynomial regression.
//!
//! Both evaluate a model at a batch of packed inputs, one evaluation per
//! slot (the machine-learning building blocks of §7.1). No rotations are
//! required; the interesting search dimension is instruction selection —
//! polynomial regression is where Porcupine discovers the
//! `a·x² + b·x = (a·x + b)·x` factorization (§7.2).

use crate::reduction::T;
use crate::PaperKernel;
use porcupine::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
use porcupine::spec::{GenericReference, KernelSpec};
use quill::program::PtOperand;
use quill::ring::Ring;
use quill::sexpr::parse_program;

struct LinearRegression;

impl GenericReference for LinearRegression {
    fn compute<R: Ring>(&self, ct: &[Vec<R>], pt: &[Vec<R>]) -> Vec<R> {
        let (x1, x2) = (&ct[0], &ct[1]);
        let (th1, th2, th0) = (&pt[0], &pt[1], &pt[2]);
        (0..x1.len())
            .map(|i| th1[i].mul(&x1[i]).add(&th2[i].mul(&x2[i])).add(&th0[i]))
            .collect()
    }
}

/// Two-feature linear regression `y = θ1·x1 + θ2·x2 + θ0` over a batch of
/// `n` slots (Table 2: 4 instructions for both baseline and synthesized).
pub fn linear_regression(n: usize) -> PaperKernel {
    let spec = KernelSpec::new(
        "linear-regression",
        n,
        2,
        3,
        vec![],
        T,
        Box::new(LinearRegression),
    );
    let sketch = Sketch::new(
        vec![
            SketchOp::plain(ArithOp::MulCtPt(PtOperand::Input(0))),
            SketchOp::plain(ArithOp::MulCtPt(PtOperand::Input(1))),
            SketchOp::plain(ArithOp::AddCtCt),
            SketchOp::plain(ArithOp::AddCtPt(PtOperand::Input(2))),
        ],
        RotationSet::Explicit(Vec::new()),
        4,
    );
    let baseline = parse_program(
        "(kernel linear-regression-baseline (inputs (ct 2) (pt 3))
           (let c2 (mul-ct-pt c0 p0))
           (let c3 (mul-ct-pt c1 p1))
           (let c4 (add-ct-ct c2 c3))
           (let c5 (add-ct-pt c4 p2))
           (return c5))",
    )
    .expect("baseline source is valid");
    PaperKernel {
        name: "linear-regression",
        spec,
        sketch,
        baseline,
    }
}

struct PolynomialRegression;

impl GenericReference for PolynomialRegression {
    fn compute<R: Ring>(&self, ct: &[Vec<R>], pt: &[Vec<R>]) -> Vec<R> {
        let x = &ct[0];
        let (a, b, c) = (&pt[0], &pt[1], &pt[2]);
        (0..x.len())
            .map(|i| a[i].mul(&x[i]).mul(&x[i]).add(&b[i].mul(&x[i])).add(&c[i]))
            .collect()
    }
}

/// Quadratic model evaluation `y = a·x² + b·x + c` over a batch of `n`
/// slots. The synthesized kernel should discover the factored form
/// `(a·x + b)·x + c`, trading a plaintext multiply for nothing — fewer
/// instructions and lower cost (§7.2 reports 7 vs 9 instructions and a 27%
/// speedup for the equivalent discovery).
pub fn polynomial_regression(n: usize) -> PaperKernel {
    let spec = KernelSpec::new(
        "polynomial-regression",
        n,
        1,
        3,
        vec![],
        T,
        Box::new(PolynomialRegression),
    );
    let sketch = Sketch::new(
        vec![
            SketchOp::plain(ArithOp::MulCtCt),
            SketchOp::plain(ArithOp::MulCtPt(PtOperand::Input(0))),
            SketchOp::plain(ArithOp::MulCtPt(PtOperand::Input(1))),
            SketchOp::plain(ArithOp::AddCtCt),
            SketchOp::plain(ArithOp::AddCtPt(PtOperand::Input(1))),
            SketchOp::plain(ArithOp::AddCtPt(PtOperand::Input(2))),
        ],
        RotationSet::Explicit(Vec::new()),
        5,
    );
    // Depth-minimized baseline: compute x², weight both terms, then sum —
    // no factoring (that is what depth minimization misses).
    let baseline = parse_program(
        "(kernel polynomial-regression-baseline (inputs (ct 1) (pt 3))
           (let c1 (mul-ct-ct c0 c0))
           (let c2 (mul-ct-pt c1 p0))
           (let c3 (mul-ct-pt c0 p1))
           (let c4 (add-ct-ct c2 c3))
           (let c5 (add-ct-pt c4 p2))
           (return c5))",
    )
    .expect("baseline source is valid");
    PaperKernel {
        name: "polynomial-regression",
        spec,
        sketch,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use porcupine::verify::verify;
    use rand::SeedableRng;

    #[test]
    fn baselines_verify() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for k in [linear_regression(8), polynomial_regression(8)] {
            verify(&k.baseline, &k.spec, &mut rng)
                .unwrap_or_else(|e| panic!("{} baseline: {e}", k.name));
        }
    }

    #[test]
    fn linear_regression_matches_table2() {
        let k = linear_regression(8);
        assert_eq!(k.baseline.len(), 4, "Table 2: 4 instructions");
        assert_eq!(k.baseline.mult_depth(), 1);
    }

    #[test]
    fn polynomial_baseline_has_three_multiplies() {
        let k = polynomial_regression(8);
        assert_eq!(k.baseline.len(), 5);
        assert_eq!(k.baseline.mult_depth(), 2);
        let counts = k.baseline.opcode_counts();
        assert!(counts.contains(&("mul-ct-ct", 1)));
        assert!(counts.contains(&("mul-ct-pt", 2)));
    }

    #[test]
    fn references_compute_expected_values() {
        let lin = linear_regression(2);
        let out = lin.spec.eval_concrete(
            &[vec![3, 4], vec![5, 6]],
            &[vec![2, 2], vec![10, 10], vec![1, 1]],
        );
        assert_eq!(out, vec![3 * 2 + 5 * 10 + 1, 4 * 2 + 6 * 10 + 1]);

        let poly = polynomial_regression(2);
        let out = poly
            .spec
            .eval_concrete(&[vec![3, 5]], &[vec![2, 2], vec![7, 7], vec![11, 11]]);
        assert_eq!(out, vec![2 * 9 + 7 * 3 + 11, 2 * 25 + 7 * 5 + 11]);
    }
}
