//! Reduction kernels: dot product, Hamming distance, L2 (squared) distance.
//!
//! These pack a data vector into the low slots of one ciphertext
//! ([`porcupine::layout::ReductionLayout`]) and reduce into slot 0 with the
//! §6.1 power-of-two rotation restriction (the reduction-tree pattern of
//! Figure 2). Per §7.1, kernels are modified to stay inside HE-supported
//! arithmetic: Hamming distance uses `Σ (x_i − y_i)²` (which equals the
//! Hamming distance on binary inputs) and L2 distance is the *squared*
//! distance (no square root).

use crate::PaperKernel;
use porcupine::cegis::{SynthesisError, SynthesisOptions};
use porcupine::layout::ReductionLayout;
use porcupine::multistep::PipelineBuilder;
use porcupine::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
use porcupine::spec::{GenericReference, KernelSpec};
use quill::program::{Program, PtOperand, ValRef};
use quill::ring::Ring;
use quill::sexpr::parse_program;

/// Plaintext modulus shared by all paper kernels (`t = 65537`).
pub const T: u64 = 65537;

struct DotProduct {
    layout: ReductionLayout,
}

impl GenericReference for DotProduct {
    fn compute<R: Ring>(&self, ct: &[Vec<R>], pt: &[Vec<R>]) -> Vec<R> {
        let x = &ct[0];
        let w = &pt[0];
        let zero = x[0].from_i64(0);
        let mut out = vec![zero.clone(); x.len()];
        out[0] = (0..self.layout.len).fold(zero, |acc, i| acc.add(&x[i].mul(&w[i])));
        out
    }
}

/// Dot product of `len` packed elements against a plaintext weight vector
/// (Figure 2's kernel with a server-local operand).
pub fn dot_product(len: usize) -> PaperKernel {
    let layout = ReductionLayout::new(len);
    let spec = KernelSpec::new(
        "dot-product",
        layout.slots,
        1,
        1,
        layout.result_mask(),
        T,
        Box::new(DotProduct { layout }),
    );
    // The layout forces the component count: slot 0 of the output depends
    // on all `len` ciphertext slots and each add at most doubles that
    // breadth (`≥ log2 len` adds), and the weights force one mul-ct-pt —
    // so deepening can start at the ceiling it will end at, skipping the
    // exhaustive Unsat proofs that dominate at large `len`.
    let sketch = Sketch::new(
        vec![
            SketchOp::plain(ArithOp::MulCtPt(PtOperand::Input(0))),
            SketchOp::rhs_rotated(ArithOp::AddCtCt),
        ],
        RotationSet::PowersOfTwo { extent: len },
        1 + len.ilog2() as usize,
    )
    .with_min_components(1 + len.ilog2() as usize);
    // Depth-minimized baseline: multiply, then a balanced rotate-add tree.
    // For len = 8: 7 instructions, depth 7 (Table 2).
    let baseline = reduction_baseline("dot-product-baseline", len, 1, 1, "(mul-ct-pt c0 p0)");
    PaperKernel {
        name: "dot-product",
        spec,
        sketch,
        baseline,
    }
}

struct SquaredDistance {
    layout: ReductionLayout,
}

impl GenericReference for SquaredDistance {
    fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
        let (x, y) = (&ct[0], &ct[1]);
        let zero = x[0].from_i64(0);
        let mut out = vec![zero.clone(); x.len()];
        out[0] = (0..self.layout.len).fold(zero, |acc, i| {
            let d = x[i].sub(&y[i]);
            acc.add(&d.mul(&d))
        });
        out
    }
}

fn squared_distance_kernel(name: &'static str, len: usize) -> PaperKernel {
    let layout = ReductionLayout::new(len);
    let spec = KernelSpec::new(
        name,
        layout.slots,
        2,
        0,
        layout.result_mask(),
        T,
        Box::new(SquaredDistance { layout }),
    );
    // Output slot 0 depends on all `len` slots of *both* inputs (breadth
    // 2·len) and every binary component at most doubles breadth, so at
    // least `1 + log2 len` components are forced — a provable floor one
    // below the ceiling (the sub and the square).
    let sketch = Sketch::new(
        vec![
            SketchOp::plain(ArithOp::SubCtCt),
            SketchOp::plain(ArithOp::MulCtCt),
            SketchOp::rhs_rotated(ArithOp::AddCtCt),
        ],
        RotationSet::PowersOfTwo { extent: len },
        2 + len.ilog2() as usize,
    )
    .with_min_components(1 + len.ilog2() as usize);
    let baseline = reduction_baseline(
        Box::leak(format!("{name}-baseline").into_boxed_str()),
        len,
        2,
        0,
        "(sub-ct-ct c0 c1)",
    );
    PaperKernel {
        name,
        spec,
        sketch,
        baseline,
    }
}

/// Hamming distance between two packed binary vectors of `len` elements:
/// `Σ (x_i − y_i)²` (= popcount of XOR on binary inputs). Table 2 size:
/// `len = 4` gives 6 instructions at depth 6.
pub fn hamming_distance(len: usize) -> PaperKernel {
    let mut k = squared_distance_kernel("hamming-distance", len);
    // Hamming = sub, square, then the reduction tree.
    k.baseline = hamming_l2_baseline("hamming-distance-baseline", len);
    k
}

/// Squared L2 distance between two packed vectors of `len` elements
/// (k-NN-style workloads use squared distance per §7.1).
pub fn l2_distance(len: usize) -> PaperKernel {
    let mut k = squared_distance_kernel("l2-distance", len);
    k.baseline = hamming_l2_baseline("l2-distance-baseline", len);
    k
}

/// Multi-step synthesis (§6.3) for a reduction kernel past the direct
/// search's scaling wall.
///
/// The paper reports that monolithic synthesis stops scaling around 10–12
/// instructions; a 64-element dot product needs 13. Its prescription is to
/// partition at natural break points and synthesize each stage — which a
/// reduction has in abundance: an elementwise *head* (the multiply /
/// subtract-and-square) followed by `log2 len` distance-halving tree
/// levels, each an independently synthesized one-component kernel. This
/// function runs that decomposition through [`PipelineBuilder`] and
/// returns the stitched program (identical in shape to what the direct
/// search finds at paper sizes — head, then `add(acc, rot(acc, s))` for
/// `s = len/2 … 1`).
///
/// Returns `None` for kernels that are not reductions or a non-power-of-two
/// `len`; `Some(Err(_))` propagates a stage's [`SynthesisError`].
pub fn synthesize_staged(
    name: &str,
    len: usize,
    options: &SynthesisOptions,
) -> Option<Result<Program, SynthesisError>> {
    if !len.is_power_of_two() || len < 2 {
        return None;
    }
    let layout = ReductionLayout::new(len);
    let slots = layout.slots;

    // The elementwise head stage: spec, sketch, and input arities.
    struct MulHead {
        len: usize,
    }
    impl GenericReference for MulHead {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], pt: &[Vec<R>]) -> Vec<R> {
            (0..ct[0].len())
                .map(|i| {
                    if i < self.len {
                        ct[0][i].mul(&pt[0][i])
                    } else {
                        ct[0][i].from_i64(0)
                    }
                })
                .collect()
        }
    }
    struct SquaredDiffHead {
        len: usize,
    }
    impl GenericReference for SquaredDiffHead {
        fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
            (0..ct[0].len())
                .map(|i| {
                    if i < self.len {
                        let d = ct[0][i].sub(&ct[1][i]);
                        d.mul(&d)
                    } else {
                        ct[0][i].from_i64(0)
                    }
                })
                .collect()
        }
    }
    let mut head_mask = vec![false; slots];
    for m in head_mask.iter_mut().take(len) {
        *m = true;
    }
    let (head_spec, head_sketch, num_ct, num_pt) = match name {
        "dot-product" => (
            KernelSpec::new(
                "dot-product-head",
                slots,
                1,
                1,
                head_mask,
                T,
                Box::new(MulHead { len }),
            ),
            Sketch::new(
                vec![SketchOp::plain(ArithOp::MulCtPt(PtOperand::Input(0)))],
                RotationSet::Explicit(Vec::new()),
                1,
            ),
            1,
            1,
        ),
        "hamming-distance" | "l2-distance" => (
            KernelSpec::new(
                "squared-diff-head",
                slots,
                2,
                0,
                head_mask,
                T,
                Box::new(SquaredDiffHead { len }),
            ),
            Sketch::new(
                vec![
                    SketchOp::plain(ArithOp::SubCtCt),
                    SketchOp::plain(ArithOp::MulCtCt),
                ],
                RotationSet::Explicit(Vec::new()),
                2,
            )
            .with_min_components(2),
            2,
            0,
        ),
        _ => return None,
    };

    // One distance-`s` halving level of the reduction tree, masked to the
    // slots that still carry partial sums.
    let halving_spec = |s: usize| -> KernelSpec {
        struct Halve {
            s: usize,
        }
        impl GenericReference for Halve {
            fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
                let x = &ct[0];
                let n = x.len();
                (0..n).map(|i| x[i].add(&x[(i + self.s) % n])).collect()
            }
        }
        let mut mask = vec![false; slots];
        for m in mask.iter_mut().take(s) {
            *m = true;
        }
        KernelSpec::new(
            format!("reduce-halve-{s}"),
            slots,
            1,
            0,
            mask,
            T,
            Box::new(Halve { s }),
        )
    };
    let halving_sketch = |s: usize| -> Sketch {
        Sketch::new(
            vec![SketchOp::rhs_rotated(ArithOp::AddCtCt)],
            RotationSet::Explicit(vec![s as i64]),
            1,
        )
    };

    let run = || -> Result<Program, SynthesisError> {
        let mut b = PipelineBuilder::new(name, num_ct, num_pt);
        let ct_binding: Vec<ValRef> = (0..num_ct).map(ValRef::Input).collect();
        let pt_binding: Vec<usize> = (0..num_pt).collect();
        let mut cur =
            b.synthesize_stage(&head_spec, &head_sketch, options, &ct_binding, &pt_binding)?;
        let mut s = len / 2;
        while s >= 1 {
            cur = b.synthesize_stage(&halving_spec(s), &halving_sketch(s), options, &[cur], &[])?;
            s /= 2;
        }
        Ok(b.finish(cur))
    };
    Some(run())
}

/// Component count the direct (monolithic) search needs for a reduction —
/// past [`DIRECT_SEARCH_MAX_COMPONENTS`], use [`synthesize_staged`].
pub fn direct_components(name: &str, len: usize) -> Option<usize> {
    match name {
        "dot-product" => Some(1 + len.ilog2() as usize),
        "hamming-distance" | "l2-distance" => Some(2 + len.ilog2() as usize),
        _ => None,
    }
}

/// The §6.3 scaling wall: direct synthesis is exhaustive and stops being
/// practical above this many components (the paper reports 10–12
/// *instructions*; components materialize up to one rotation each).
pub const DIRECT_SEARCH_MAX_COMPONENTS: usize = 5;

/// The wall for the bottom-up term-bank strategy
/// (`SearchStrategy::BottomUp`): observational-equivalence deduplication
/// keeps the per-level work polynomial in the bank size, so monolithic
/// specs that the DFS cannot finish (e.g. a 16-element dot product or a
/// 16-element L2 distance, 5–6 components with their rotations) synthesize
/// directly. Past this, stage-wise decomposition is still the answer.
pub const BOTTOM_UP_MAX_COMPONENTS: usize = 6;

/// The direct-search component wall for a strategy: how many components a
/// monolithic reduction spec may need before the driver should switch to
/// [`synthesize_staged`].
pub fn direct_search_wall(strategy: porcupine::cegis::SearchStrategy) -> usize {
    match strategy {
        porcupine::cegis::SearchStrategy::BottomUp => BOTTOM_UP_MAX_COMPONENTS,
        porcupine::cegis::SearchStrategy::Dfs => DIRECT_SEARCH_MAX_COMPONENTS,
    }
}

/// Builds `first_instr` followed by a balanced rotate-add reduction over
/// `len` slots, in surface syntax.
fn reduction_baseline(
    name: &str,
    len: usize,
    num_ct: usize,
    num_pt: usize,
    first_instr: &str,
) -> quill::program::Program {
    assert!(len.is_power_of_two());
    let mut src = format!("(kernel {name} (inputs (ct {num_ct}) (pt {num_pt}))\n");
    let mut next = num_ct; // index of next binding
    src.push_str(&format!("  (let c{next} {first_instr})\n"));
    let mut acc = next;
    next += 1;
    let mut step = len / 2;
    while step >= 1 {
        src.push_str(&format!("  (let c{next} (rot-ct c{acc} {step}))\n"));
        src.push_str(&format!(
            "  (let c{} (add-ct-ct c{acc} c{next}))\n",
            next + 1
        ));
        acc = next + 1;
        next += 2;
        step /= 2;
    }
    src.push_str(&format!("  (return c{acc}))"));
    parse_program(&src).expect("baseline source is valid")
}

fn hamming_l2_baseline(name: &str, len: usize) -> quill::program::Program {
    assert!(len.is_power_of_two());
    let mut src = format!("(kernel {name} (inputs (ct 2) (pt 0))\n");
    src.push_str("  (let c2 (sub-ct-ct c0 c1))\n");
    src.push_str("  (let c3 (mul-ct-ct c2 c2))\n");
    let mut acc = 3;
    let mut next = 4;
    let mut step = len / 2;
    while step >= 1 {
        src.push_str(&format!("  (let c{next} (rot-ct c{acc} {step}))\n"));
        src.push_str(&format!(
            "  (let c{} (add-ct-ct c{acc} c{next}))\n",
            next + 1
        ));
        acc = next + 1;
        next += 2;
        step /= 2;
    }
    src.push_str(&format!("  (return c{acc}))"));
    parse_program(&src).expect("baseline source is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use porcupine::verify::verify;
    use rand::SeedableRng;

    #[test]
    fn baselines_verify_against_specs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for k in [dot_product(8), hamming_distance(4), l2_distance(8)] {
            verify(&k.baseline, &k.spec, &mut rng)
                .unwrap_or_else(|e| panic!("{} baseline: {e}", k.name));
        }
    }

    #[test]
    fn dot_product_baseline_matches_table2() {
        let k = dot_product(8);
        assert_eq!(k.baseline.len(), 7, "Table 2: dot product 7 instructions");
        assert_eq!(k.baseline.logic_depth(), 7, "Table 2: depth 7");
    }

    #[test]
    fn hamming_baseline_matches_table2() {
        let k = hamming_distance(4);
        assert_eq!(k.baseline.len(), 6, "Table 2: Hamming 6 instructions");
        assert_eq!(k.baseline.logic_depth(), 6, "Table 2: depth 6");
    }

    #[test]
    fn l2_baseline_shape() {
        // Table 2 reports 9/9; our formulation of the same kernel needs 8
        // (sub, square, and a 3-level rotate-add tree) — documented in
        // EXPERIMENTS.md.
        let k = l2_distance(8);
        assert_eq!(k.baseline.len(), 8);
        assert_eq!(k.baseline.logic_depth(), 8);
        assert_eq!(k.baseline.mult_depth(), 1);
    }

    /// Staged (§6.3) synthesis of a 64-element dot product — far past the
    /// direct search's scaling wall — completes quickly and verifies
    /// against the *monolithic* spec.
    #[test]
    fn staged_dot_product_64_verifies_against_full_spec() {
        let options = porcupine::cegis::SynthesisOptions {
            timeout: std::time::Duration::from_secs(60),
            latency: quill::cost::LatencyModel::uniform(),
            cache: porcupine::cegis::CachePolicy::Disabled,
            ..Default::default()
        };
        let prog = synthesize_staged("dot-product", 64, &options)
            .expect("dot-product stages")
            .expect("every stage synthesizes");
        // Head + 6 rotate-add levels: 13 instructions, like the direct
        // search's answer shape at paper sizes.
        assert_eq!(prog.len(), 13);
        let k = dot_product(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        verify(&prog, &k.spec, &mut rng).expect("staged program implements the full reduction");
    }

    #[test]
    fn staged_l2_matches_direct_shape() {
        let options = porcupine::cegis::SynthesisOptions {
            timeout: std::time::Duration::from_secs(60),
            latency: quill::cost::LatencyModel::uniform(),
            cache: porcupine::cegis::CachePolicy::Disabled,
            ..Default::default()
        };
        let prog = synthesize_staged("l2-distance", 16, &options)
            .expect("l2 stages")
            .expect("every stage synthesizes");
        let k = l2_distance(16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        verify(&prog, &k.spec, &mut rng).expect("staged l2 implements the full kernel");
    }

    #[test]
    fn staged_rejects_non_reductions_and_bad_lengths() {
        let options = porcupine::cegis::SynthesisOptions::default();
        assert!(synthesize_staged("box-blur", 8, &options).is_none());
        assert!(synthesize_staged("dot-product", 12, &options).is_none());
        assert_eq!(direct_components("dot-product", 64), Some(7));
        assert_eq!(direct_components("box-blur", 64), None);
    }

    #[test]
    fn reduction_reference_values() {
        let k = dot_product(4);
        let x = vec![1, 2, 3, 4, 0, 0, 0, 0];
        let w = vec![5, 6, 7, 8, 0, 0, 0, 0];
        let out = k.spec.eval_concrete(&[x], &[w]);
        assert_eq!(out[0], 70);
    }

    #[test]
    fn hamming_counts_differences_on_binary_inputs() {
        let k = hamming_distance(4);
        let x = vec![1, 0, 1, 1, 0, 0, 0, 0];
        let y = vec![1, 1, 0, 1, 0, 0, 0, 0];
        let out = k.spec.eval_concrete(&[x, y], &[]);
        assert_eq!(out[0], 2);
    }
}
