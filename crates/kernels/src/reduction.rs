//! Reduction kernels: dot product, Hamming distance, L2 (squared) distance.
//!
//! These pack a data vector into the low slots of one ciphertext
//! ([`porcupine::layout::ReductionLayout`]) and reduce into slot 0 with the
//! §6.1 power-of-two rotation restriction (the reduction-tree pattern of
//! Figure 2). Per §7.1, kernels are modified to stay inside HE-supported
//! arithmetic: Hamming distance uses `Σ (x_i − y_i)²` (which equals the
//! Hamming distance on binary inputs) and L2 distance is the *squared*
//! distance (no square root).

use crate::PaperKernel;
use porcupine::layout::ReductionLayout;
use porcupine::sketch::{ArithOp, RotationSet, Sketch, SketchOp};
use porcupine::spec::{GenericReference, KernelSpec};
use quill::program::PtOperand;
use quill::ring::Ring;
use quill::sexpr::parse_program;

/// Plaintext modulus shared by all paper kernels (`t = 65537`).
pub const T: u64 = 65537;

struct DotProduct {
    layout: ReductionLayout,
}

impl GenericReference for DotProduct {
    fn compute<R: Ring>(&self, ct: &[Vec<R>], pt: &[Vec<R>]) -> Vec<R> {
        let x = &ct[0];
        let w = &pt[0];
        let zero = x[0].from_i64(0);
        let mut out = vec![zero.clone(); x.len()];
        out[0] = (0..self.layout.len).fold(zero, |acc, i| acc.add(&x[i].mul(&w[i])));
        out
    }
}

/// Dot product of `len` packed elements against a plaintext weight vector
/// (Figure 2's kernel with a server-local operand).
pub fn dot_product(len: usize) -> PaperKernel {
    let layout = ReductionLayout::new(len);
    let spec = KernelSpec::new(
        "dot-product",
        layout.slots,
        1,
        1,
        layout.result_mask(),
        T,
        Box::new(DotProduct { layout }),
    );
    let sketch = Sketch::new(
        vec![
            SketchOp::plain(ArithOp::MulCtPt(PtOperand::Input(0))),
            SketchOp::rhs_rotated(ArithOp::AddCtCt),
        ],
        RotationSet::PowersOfTwo { extent: len },
        1 + len.ilog2() as usize,
    );
    // Depth-minimized baseline: multiply, then a balanced rotate-add tree.
    // For len = 8: 7 instructions, depth 7 (Table 2).
    let baseline = reduction_baseline("dot-product-baseline", len, 1, 1, "(mul-ct-pt c0 p0)");
    PaperKernel {
        name: "dot-product",
        spec,
        sketch,
        baseline,
    }
}

struct SquaredDistance {
    layout: ReductionLayout,
}

impl GenericReference for SquaredDistance {
    fn compute<R: Ring>(&self, ct: &[Vec<R>], _pt: &[Vec<R>]) -> Vec<R> {
        let (x, y) = (&ct[0], &ct[1]);
        let zero = x[0].from_i64(0);
        let mut out = vec![zero.clone(); x.len()];
        out[0] = (0..self.layout.len).fold(zero, |acc, i| {
            let d = x[i].sub(&y[i]);
            acc.add(&d.mul(&d))
        });
        out
    }
}

fn squared_distance_kernel(name: &'static str, len: usize) -> PaperKernel {
    let layout = ReductionLayout::new(len);
    let spec = KernelSpec::new(
        name,
        layout.slots,
        2,
        0,
        layout.result_mask(),
        T,
        Box::new(SquaredDistance { layout }),
    );
    let sketch = Sketch::new(
        vec![
            SketchOp::plain(ArithOp::SubCtCt),
            SketchOp::plain(ArithOp::MulCtCt),
            SketchOp::rhs_rotated(ArithOp::AddCtCt),
        ],
        RotationSet::PowersOfTwo { extent: len },
        2 + len.ilog2() as usize,
    );
    let baseline = reduction_baseline(
        Box::leak(format!("{name}-baseline").into_boxed_str()),
        len,
        2,
        0,
        "(sub-ct-ct c0 c1)",
    );
    PaperKernel {
        name,
        spec,
        sketch,
        baseline,
    }
}

/// Hamming distance between two packed binary vectors of `len` elements:
/// `Σ (x_i − y_i)²` (= popcount of XOR on binary inputs). Table 2 size:
/// `len = 4` gives 6 instructions at depth 6.
pub fn hamming_distance(len: usize) -> PaperKernel {
    let mut k = squared_distance_kernel("hamming-distance", len);
    // Hamming = sub, square, then the reduction tree.
    k.baseline = hamming_l2_baseline("hamming-distance-baseline", len);
    k
}

/// Squared L2 distance between two packed vectors of `len` elements
/// (k-NN-style workloads use squared distance per §7.1).
pub fn l2_distance(len: usize) -> PaperKernel {
    let mut k = squared_distance_kernel("l2-distance", len);
    k.baseline = hamming_l2_baseline("l2-distance-baseline", len);
    k
}

/// Builds `first_instr` followed by a balanced rotate-add reduction over
/// `len` slots, in surface syntax.
fn reduction_baseline(
    name: &str,
    len: usize,
    num_ct: usize,
    num_pt: usize,
    first_instr: &str,
) -> quill::program::Program {
    assert!(len.is_power_of_two());
    let mut src = format!("(kernel {name} (inputs (ct {num_ct}) (pt {num_pt}))\n");
    let mut next = num_ct; // index of next binding
    src.push_str(&format!("  (let c{next} {first_instr})\n"));
    let mut acc = next;
    next += 1;
    let mut step = len / 2;
    while step >= 1 {
        src.push_str(&format!("  (let c{next} (rot-ct c{acc} {step}))\n"));
        src.push_str(&format!(
            "  (let c{} (add-ct-ct c{acc} c{next}))\n",
            next + 1
        ));
        acc = next + 1;
        next += 2;
        step /= 2;
    }
    src.push_str(&format!("  (return c{acc}))"));
    parse_program(&src).expect("baseline source is valid")
}

fn hamming_l2_baseline(name: &str, len: usize) -> quill::program::Program {
    assert!(len.is_power_of_two());
    let mut src = format!("(kernel {name} (inputs (ct 2) (pt 0))\n");
    src.push_str("  (let c2 (sub-ct-ct c0 c1))\n");
    src.push_str("  (let c3 (mul-ct-ct c2 c2))\n");
    let mut acc = 3;
    let mut next = 4;
    let mut step = len / 2;
    while step >= 1 {
        src.push_str(&format!("  (let c{next} (rot-ct c{acc} {step}))\n"));
        src.push_str(&format!(
            "  (let c{} (add-ct-ct c{acc} c{next}))\n",
            next + 1
        ));
        acc = next + 1;
        next += 2;
        step /= 2;
    }
    src.push_str(&format!("  (return c{acc}))"));
    parse_program(&src).expect("baseline source is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use porcupine::verify::verify;
    use rand::SeedableRng;

    #[test]
    fn baselines_verify_against_specs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for k in [dot_product(8), hamming_distance(4), l2_distance(8)] {
            verify(&k.baseline, &k.spec, &mut rng)
                .unwrap_or_else(|e| panic!("{} baseline: {e}", k.name));
        }
    }

    #[test]
    fn dot_product_baseline_matches_table2() {
        let k = dot_product(8);
        assert_eq!(k.baseline.len(), 7, "Table 2: dot product 7 instructions");
        assert_eq!(k.baseline.logic_depth(), 7, "Table 2: depth 7");
    }

    #[test]
    fn hamming_baseline_matches_table2() {
        let k = hamming_distance(4);
        assert_eq!(k.baseline.len(), 6, "Table 2: Hamming 6 instructions");
        assert_eq!(k.baseline.logic_depth(), 6, "Table 2: depth 6");
    }

    #[test]
    fn l2_baseline_shape() {
        // Table 2 reports 9/9; our formulation of the same kernel needs 8
        // (sub, square, and a 3-level rotate-add tree) — documented in
        // EXPERIMENTS.md.
        let k = l2_distance(8);
        assert_eq!(k.baseline.len(), 8);
        assert_eq!(k.baseline.logic_depth(), 8);
        assert_eq!(k.baseline.mult_depth(), 1);
    }

    #[test]
    fn reduction_reference_values() {
        let k = dot_product(4);
        let x = vec![1, 2, 3, 4, 0, 0, 0, 0];
        let w = vec![5, 6, 7, 8, 0, 0, 0, 0];
        let out = k.spec.eval_concrete(&[x], &[w]);
        assert_eq!(out[0], 70);
    }

    #[test]
    fn hamming_counts_differences_on_binary_inputs() {
        let k = hamming_distance(4);
        let x = vec![1, 0, 1, 1, 0, 0, 0, 0];
        let y = vec![1, 1, 0, 1, 0, 0, 0, 0];
        let out = k.spec.eval_concrete(&[x, y], &[]);
        assert_eq!(out[0], 2);
    }
}
