//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset the `porcupine-bench` harnesses use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple median-of-samples timer
//! instead of criterion's full statistical machinery. Output is a plain
//! `name  median  (samples)` table on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility with real criterion; flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.default_measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let time = self.default_measurement_time;
        run_bench(&id.into(), sample_size, time, f);
        self
    }
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.sample_size, self.measurement_time, f);
        self
    }

    pub fn finish(self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
    budget: Duration,
}

impl Bencher {
    /// Runs `body` repeatedly until the sample or time budget is exhausted,
    /// recording one wall-clock sample per invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let target = self.target.max(1);
        let started = Instant::now();
        // One warm-up run, untimed.
        black_box(body());
        for _ in 0..target {
            let t0 = Instant::now();
            black_box(body());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, budget: Duration, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        target: sample_size,
        budget,
    };
    f(&mut bencher);
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "{label:<40} {:>12}  ({} samples)",
        format_duration(median),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Collects benchmark functions into a named group runner, as real criterion
/// does. Supports the plain `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 3);
    }
}
