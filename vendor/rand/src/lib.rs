//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the slice of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension trait with `gen_range` over integer ranges and `gen::<T>()`.
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — statistically solid
//! for test-input generation and fully deterministic for a given seed, which
//! is all the synthesizer and test suites require. It is **not** a CSPRNG;
//! the workspace's own `bfv` crate already carries the matching caveat.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Generatable: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_generatable_uint {
    ($($ty:ty),*) => {$(
        impl Generatable for $ty {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_generatable_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Generatable for u128 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Generatable for i128 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::generate(rng) as i128
    }
}

impl Generatable for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty => $wide:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let draw = <$wide as SampleBelow>::sample_below(rng, span);
                (self.start as $wide).wrapping_add(draw) as $ty
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // span == 0 means the range covers the whole type.
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                let draw = <$wide as SampleBelow>::sample_below(rng, span);
                (lo as $wide).wrapping_add(draw) as $ty
            }
        }
    )*};
}

/// Unbiased draw from `[0, span)` by rejection sampling — a plain `% span`
/// would overrepresent small residues, which matters because the BFV
/// backend samples key material through `gen_range`. `span == 0` denotes
/// the full type range.
trait SampleBelow: Generatable {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: Self) -> Self;
}

macro_rules! impl_sample_below {
    ($($wide:ty),*) => {$(
        impl SampleBelow for $wide {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: $wide) -> $wide {
                if span == 0 {
                    return <$wide>::generate(rng);
                }
                // Largest multiple of span: draws at or above it would wrap
                // unevenly, so redraw (at most span-1 of 2^N values reject).
                let zone = (<$wide>::MAX / span) * span;
                loop {
                    let draw = <$wide>::generate(rng);
                    if draw < zone {
                        return draw % span;
                    }
                }
            }
        }
    )*};
}

impl_sample_below!(u64, u128);

impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64, u128 => u128,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64, i128 => u128
);

/// User-facing extension trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen<T: Generatable>(&mut self) -> T {
        T::generate(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(0..17);
            assert!(v < 17);
            let s: i64 = rng.gen_range(-1..=1);
            assert!((-1..=1).contains(&s));
            let w: u128 = rng.gen_range(1..=u128::MAX);
            assert!(w >= 1);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v: i64 = rng.gen_range(-1..=1);
            seen[(v + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_dyn_style_generics() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample(&mut rng) < 100);
    }
}
