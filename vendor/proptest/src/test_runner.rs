//! The case-driving runner: deterministic per-test seeding, rejection
//! (`prop_assume!`) handling, and failure reporting with the case seed.

use crate::strategy::Strategy;

/// The RNG handed to strategies. Deterministic per test and per case.
pub type TestRng = rand::rngs::StdRng;

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs violated a `prop_assume!`; draw a replacement.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Result type property bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is meaningful in this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// Drives a strategy through `config.cases` cases.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
    name: &'static str,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            base_seed: 0x5EED_CAFE,
            name: "<property>",
        }
    }

    /// Seeds the case stream from the test's fully-qualified name so distinct
    /// tests explore distinct inputs but each test is reproducible.
    pub fn new_for_test(config: ProptestConfig, name: &'static str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            config,
            base_seed: seed,
            name,
        }
    }

    /// Runs `body` on `config.cases` generated inputs, panicking (so the
    /// surrounding `#[test]` fails) on the first `TestCaseError::Fail`.
    pub fn run<S, F>(&mut self, strategy: &S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        use rand::SeedableRng;
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while passed < self.config.cases {
            let case_seed = self.base_seed.wrapping_add(case_index);
            case_index += 1;
            let mut rng = TestRng::seed_from_u64(case_seed);
            let value = strategy.new_value(&mut rng);
            match body(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "{}: too many inputs rejected by prop_assume! \
                             ({rejected} rejects for {passed} passes)",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "{}: property failed after {} passing case(s) \
                         [case seed {case_seed:#x}]\n{message}",
                        self.name, passed
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use crate::strategy::Strategy;

    #[test]
    fn runs_requested_number_of_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        let mut seen = 0;
        runner.run(&(any::<u64>(),), |(_v,)| {
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        runner.run(&(0u64..100,), |(v,)| {
            if v < 1000 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    fn rejects_draw_replacements() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5));
        let mut passed = 0;
        runner.run(&(any::<u64>(),), |(v,)| {
            if v % 2 == 0 {
                Err(TestCaseError::reject("odd only"))
            } else {
                passed += 1;
                Ok(())
            }
        });
        assert_eq!(passed, 5);
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0u64..10).prop_map(|v| v * 2);
        let mut runner = TestRunner::new(ProptestConfig::with_cases(20));
        runner.run(&(strat,), |(v,)| {
            assert!(v % 2 == 0 && v < 20);
            Ok(())
        });
    }
}
