//! `prop::collection::vec` — vectors of values from an element strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Acceptable length specifications: an exact `usize` or a `Range<usize>`.
pub trait IntoSizeRange {
    /// Inclusive lower bound and exclusive upper bound.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.min + 1 >= self.max_exclusive {
            self.min
        } else {
            rng.gen_range(self.min..self.max_exclusive)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max_exclusive) = size.bounds();
    assert!(min < max_exclusive, "empty vec length range");
    VecStrategy {
        element,
        min,
        max_exclusive,
    }
}
