//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property suites use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`arbitrary::any`],
//! integer-range and tuple strategies, `prop::collection::vec`,
//! [`strategy::Strategy::prop_map`], and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Compared to real proptest there is no shrinking and no persistence: a
//! failing case reports the failure message and the case's RNG seed. Cases
//! are generated from a deterministic per-test seed so failures reproduce.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;` — mirrors the real crate's prelude, including
/// the `prop` alias for the crate root (so `prop::collection::vec` works).
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in prop::collection::vec(any::<u16>(), 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new_for_test(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(&($($strat,)+), |($($pat,)+)| {
                $body
                Ok(())
            });
        }
    )*};
}

/// Like `assert!` but returns a [`test_runner::TestCaseError`] so the runner
/// can attach the failing case's seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Like `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case without failing the test (the runner draws a
/// replacement input instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
