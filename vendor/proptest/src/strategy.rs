//! Value-generation strategies: integer ranges, tuples, `Just`, and
//! [`Strategy::prop_map`]. No shrinking — strategies only generate.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
