//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.gen::<$ty>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
