//! The Porcupine command-line driver: synthesize, inspect, and export the
//! paper's kernels from a shell.
//!
//! ```text
//! porcupine list                         # the kernel registry
//! porcupine synth gx                     # synthesize, print Quill + stats
//! porcupine synth gx --emit seal         # print generated SEAL C++
//! porcupine synth gx --explicit          # §7.4 ablation sketch mode
//! porcupine synth box-blur --auto        # infer the sketch from the spec
//! porcupine synth gx --jobs 4            # search with 4 worker threads
//! porcupine synth sobel-combine -O0      # middle-end level (also -O1/-O2)
//! porcupine synth dot-product --size 64 --params auto
//!                                        # bigger kernel, auto-selected
//!                                        # params, encrypted check
//! porcupine synth dot-product --scheme bgv --params auto
//!                                        # same kernel on the BGV backend
//! porcupine baseline gx                  # print the hand-written baseline
//! ```
//!
//! `--jobs` defaults to `PORCUPINE_JOBS` or the machine's available
//! parallelism; the synthesized program is identical at any value.
//! `--eval-jobs` (default: `PORCUPINE_EVAL_JOBS`, else 1) sets the worker
//! count for the encrypted check's execution engine — decryptions are
//! bit-identical at any setting. The
//! printed program is the middle-end's output at the selected `-O` level
//! (default: `PORCUPINE_OPT` or `-O2`) — backend-legal IR with explicit
//! `relin-ct` placement; `-O0` reproduces the eager
//! relin-after-every-multiply lowering.
//!
//! `--scheme bfv|bgv` (default: `PORCUPINE_SCHEME`, else `bfv`) picks the
//! backend the kernel targets: it selects the lowering legality, the
//! latency model behind the cost objective, the noise model behind
//! parameter selection, and which evaluator the encrypted check runs on.
//!
//! `--size` scales a kernel past the paper's toy dimensions (image
//! interior width for the stencils, element count for the reductions,
//! batch width for the regressions). `--params auto` lets the scheme's
//! static noise analysis pick the smallest safe parameter set for the
//! lowered program (`--margin-bits` adjusts the safety margin;
//! `--params paper` pins the paper's fixed `N = 8192` set) and then
//! actually encrypts, runs, and decrypts the kernel, asserting the
//! backend matches the interpreter slot for slot.

use bfv::params::{BfvParams, ParamPolicy};
use porcupine::autosketch::auto_sketch;
use porcupine::cegis::{
    default_parallelism, default_strategy, synthesize, CachePolicy, SearchStrategy,
    SynthesisOptions,
};
use porcupine::codegen::{emit_seal_cpp, Runner};
use porcupine::opt::{self, OptLevel};
use porcupine::scheme::{BfvScheme, BgvScheme, Scheme};
use porcupine::spec::KernelSpec;
use porcupine_kernels::{all_direct, direct_kernel, PaperKernel};
use quill::cost::{eager_cost, LatencyModel};
use quill::scheme::SchemeId;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  porcupine list\n  porcupine synth <kernel> [--timeout <s>] [--emit seal|quill] [--explicit] [--auto] [--seed <n>] [--jobs <n>] [-O<0|1|2>] [--scheme bfv|bgv] [--size <n>] [--params auto|paper] [--margin-bits <n>] [--strategy bottom-up|dfs] [--cache <dir>] [--no-cache] [--eval-jobs <n>]\n  porcupine baseline <kernel> [--emit seal|quill] [-O<0|1|2>]"
    );
    ExitCode::FAILURE
}

fn find_kernel(name: &str, size: Option<usize>) -> Option<PaperKernel> {
    direct_kernel(name, size)
}

/// Encrypts seeded random inputs, executes the lowered program on the
/// scheme backend `S` under `params`, decrypts, and compares against the
/// interpreter on the spec's masked slots. Returns the measured remaining
/// noise budget.
fn run_encrypted_check_for<S: Scheme>(
    prog: &quill::program::Program,
    spec: &KernelSpec,
    params: BfvParams,
    seed: u64,
    eval_jobs: NonZeroUsize,
) -> Result<i64, String> {
    let ctx = S::context(params).map_err(|e| e.to_string())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let t = spec.t;
    let sample = |count: usize, rng: &mut rand::rngs::StdRng| -> Vec<Vec<u64>> {
        (0..count)
            .map(|_| (0..spec.n).map(|_| rng.gen_range(0..t)).collect())
            .collect()
    };
    let ct_model = sample(prog.num_ct_inputs, &mut rng);
    let pt_model = sample(prog.num_pt_inputs, &mut rng);
    let expected = quill::interp::eval_concrete(prog, &ct_model, &pt_model, t);

    let keygen = S::keygen(&ctx, &mut rng);
    let encryptor = S::encryptor(&ctx, &keygen, &mut rng);
    let decryptor = S::decryptor(&ctx, &keygen);
    let runner: Runner<'_, S> =
        Runner::for_programs(&ctx, &keygen, &[prog], &mut rng).with_eval_jobs(eval_jobs.get());
    let encoder = runner.encoder();
    let cts: Vec<S::Ciphertext> = ct_model
        .iter()
        .map(|v| S::encrypt(&encryptor, &S::encode(encoder, v), &mut rng))
        .collect();
    let pts: Vec<S::Plaintext> = pt_model.iter().map(|v| S::encode(encoder, v)).collect();
    let ct_refs: Vec<&S::Ciphertext> = cts.iter().collect();
    let pt_refs: Vec<&S::Plaintext> = pts.iter().collect();
    let out = runner.run(prog, &ct_refs, &pt_refs);
    let budget = S::noise_budget(&decryptor, &out);
    if budget <= 0 {
        return Err(format!("noise budget exhausted at decryption ({budget})"));
    }
    let decoded = S::decode(encoder, &S::decrypt(&decryptor, &out));
    for (i, &on) in spec.output_mask.iter().enumerate() {
        if on && decoded[i] != expected[i] {
            return Err(format!(
                "slot {i}: backend {} != interpreter {}",
                decoded[i], expected[i]
            ));
        }
    }
    Ok(budget)
}

/// [`run_encrypted_check_for`] dispatched on a runtime scheme identifier.
fn run_encrypted_check(
    scheme: SchemeId,
    prog: &quill::program::Program,
    spec: &KernelSpec,
    params: BfvParams,
    seed: u64,
    eval_jobs: NonZeroUsize,
) -> Result<i64, String> {
    match scheme {
        SchemeId::Bfv => run_encrypted_check_for::<BfvScheme>(prog, spec, params, seed, eval_jobs),
        SchemeId::Bgv => run_encrypted_check_for::<BgvScheme>(prog, spec, params, seed, eval_jobs),
    }
}

/// Extracts an `-O0`/`-O1`/`-O2` (or `--opt-level <n>`) flag, if present.
fn parse_opt_level(args: &[String]) -> Result<Option<OptLevel>, String> {
    if let Some(i) = args.iter().position(|a| a == "--opt-level") {
        let v = args
            .get(i + 1)
            .ok_or_else(|| "--opt-level requires a value".to_string())?;
        return v.parse().map(Some);
    }
    match args.iter().find(|a| a.starts_with("-O")) {
        Some(flag) => flag.parse().map(Some),
        None => Ok(None),
    }
}

/// Prints the resolved parameter set and, for auto selection, the noise
/// analysis behind it.
fn report_params(
    scheme: SchemeId,
    optimized: &quill::program::Program,
    params: &BfvParams,
    policy: &ParamPolicy,
    verbose: bool,
) {
    let total_bits: u32 = params.moduli.iter().map(|&q| 64 - q.leading_zeros()).sum();
    let mode = match policy {
        ParamPolicy::Auto { .. } => "auto",
        ParamPolicy::Fixed(_) => "fixed",
    };
    eprintln!(
        "; params ({mode}, {scheme}): N = {}, t = {}, q = {} primes / {total_bits} bits",
        params.poly_degree,
        params.plain_modulus,
        params.moduli.len(),
    );
    if verbose {
        let report = porcupine::scheme::analyze_noise(scheme, params, optimized);
        eprintln!(
            "; noise: fresh budget {:.1} bits, worst-case consumed {:.1}, predicted >= {:.1} at decryption",
            report.fresh_budget_bits, report.consumed_bits, report.predicted_budget_bits,
        );
    }
}

/// The shared tail of every synth path: params report, the optional
/// encrypted cross-check, and program/SEAL emission.
#[allow(clippy::too_many_arguments)]
fn finish_synth(
    k: &PaperKernel,
    optimized: &quill::program::Program,
    params: &Result<BfvParams, bfv::params::SelectError>,
    options: &SynthesisOptions,
    args: &[String],
    run_check: bool,
    eval_jobs: NonZeroUsize,
) -> ExitCode {
    match params {
        Ok(params) => {
            report_params(
                options.scheme,
                optimized,
                params,
                &options.params,
                run_check,
            );
            if run_check {
                // `--params` asks for the full flow: encrypt, run on the
                // selected scheme backend under the resolved set, decrypt,
                // and cross-check against the interpreter.
                match run_encrypted_check(
                    options.scheme,
                    optimized,
                    &k.spec,
                    params.clone(),
                    options.seed,
                    eval_jobs,
                ) {
                    Ok(budget) => eprintln!(
                        "; encrypted check: backend matches interpreter on all masked \
                         slots, {budget} bits of noise budget left"
                    ),
                    Err(e) => {
                        eprintln!("encrypted check failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        // With `--params` the user asked for certified parameters: fail.
        // Without, emission needs no parameters; note the failure and go on.
        Err(e) if run_check => {
            eprintln!("parameter selection failed: {e}");
            return ExitCode::FAILURE;
        }
        Err(e) => eprintln!("; params: selection failed ({e}); emitting code only"),
    }
    if args.iter().any(|a| a == "seal") {
        print!("{}", emit_seal_cpp(optimized));
    } else {
        print!("{optimized}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `porcupine dot-product` is shorthand for `porcupine synth dot-product`.
    if args.first().is_some_and(|a| find_kernel(a, None).is_some()) {
        args.insert(0, "synth".to_string());
    }
    // Validate `PORCUPINE_SCHEME` up front so a typo is a clean error here
    // rather than a panic out of `SynthesisOptions::default()`.
    let env_scheme = match porcupine::scheme::scheme_from_env() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let model = LatencyModel::profiled_default();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!(
                "{:<24} {:>6} {:>7} {:>7} {:>12}",
                "kernel", "instr", "depth", "mdepth", "cost"
            );
            for k in all_direct() {
                println!(
                    "{:<24} {:>6} {:>7} {:>7} {:>12.0}",
                    k.name,
                    k.baseline.len(),
                    k.baseline.logic_depth(),
                    k.baseline.mult_depth(),
                    eager_cost(&k.baseline, &model),
                );
            }
            ExitCode::SUCCESS
        }
        Some("baseline") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(k) = find_kernel(name, None) else {
                eprintln!("unknown kernel '{name}' (try `porcupine list`)");
                return ExitCode::FAILURE;
            };
            // Without an explicit -O flag the raw baseline prints as-is;
            // with one, the middle-end runs first.
            let prog = match parse_opt_level(&args) {
                Ok(None) => k.baseline.clone(),
                Ok(Some(level)) => {
                    let (optimized, report) = opt::optimize(&k.baseline, level);
                    eprintln!("; -{level}: {report}");
                    optimized
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if args.iter().any(|a| a == "seal") {
                print!("{}", emit_seal_cpp(&prog));
            } else {
                print!("{prog}");
            }
            ExitCode::SUCCESS
        }
        Some("synth") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let grab = |flag: &str| -> Option<u64> {
                args.iter()
                    .position(|a| a == flag)
                    .and_then(|i| args.get(i + 1))
                    .and_then(|v| v.parse().ok())
            };
            let size = grab("--size").map(|n| n as usize);
            let Some(k) = find_kernel(name, size) else {
                match size {
                    Some(s) => eprintln!(
                        "kernel '{name}' does not exist or cannot take size {s} \
                         (reductions need a power of two; try `porcupine list`)"
                    ),
                    None => eprintln!("unknown kernel '{name}' (try `porcupine list`)"),
                }
                return ExitCode::FAILURE;
            };
            // `--params` present with a missing value is an error, not a
            // silently skipped encrypted check.
            let params_mode = match args.iter().position(|a| a == "--params") {
                Some(i) => match args.get(i + 1).map(String::as_str) {
                    Some(mode @ ("auto" | "paper")) => Some(mode),
                    other => {
                        eprintln!(
                            "--params requires 'auto' or 'paper', got {:?}",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            // `--scheme` beats `PORCUPINE_SCHEME` beats the BFV default;
            // an unknown name is an error, never a silent fallback.
            let scheme = match args.iter().position(|a| a == "--scheme") {
                Some(i) => match args.get(i + 1).map(String::as_str) {
                    Some(v) => match SchemeId::parse(v) {
                        Some(s) => s,
                        None => {
                            eprintln!(
                                "--scheme requires one of {:?}, got '{v}'",
                                SchemeId::ALL.iter().map(|s| s.name()).collect::<Vec<_>>()
                            );
                            return ExitCode::FAILURE;
                        }
                    },
                    None => {
                        eprintln!("--scheme requires a value (bfv or bgv)");
                        return ExitCode::FAILURE;
                    }
                },
                None => env_scheme,
            };
            let policy = match params_mode {
                Some("paper") => ParamPolicy::Fixed(BfvParams::paper()),
                _ => match grab("--margin-bits") {
                    Some(m) => ParamPolicy::Auto {
                        margin_bits: m as f64,
                    },
                    None => ParamPolicy::auto(),
                },
            };
            let jobs = match grab("--jobs") {
                Some(n) => match NonZeroUsize::new(n as usize) {
                    Some(j) => j,
                    None => {
                        eprintln!("--jobs must be at least 1");
                        return ExitCode::FAILURE;
                    }
                },
                None => default_parallelism(),
            };
            let eval_jobs = match grab("--eval-jobs") {
                Some(n) => match NonZeroUsize::new(n as usize) {
                    Some(j) => j,
                    None => {
                        eprintln!("--eval-jobs must be at least 1");
                        return ExitCode::FAILURE;
                    }
                },
                None => porcupine::codegen::default_eval_jobs(),
            };
            let opt_level = match parse_opt_level(&args) {
                Ok(level) => level.unwrap_or_else(opt::default_opt_level),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let strategy = match args.iter().position(|a| a == "--strategy") {
                Some(i) => match args.get(i + 1).map(String::as_str) {
                    Some("bottom-up") => SearchStrategy::BottomUp,
                    Some("dfs") => SearchStrategy::Dfs,
                    other => {
                        eprintln!(
                            "--strategy requires 'bottom-up' or 'dfs', got {:?}",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::FAILURE;
                    }
                },
                None => default_strategy(),
            };
            let cache = if args.iter().any(|a| a == "--no-cache") {
                CachePolicy::Disabled
            } else {
                match args.iter().position(|a| a == "--cache") {
                    Some(i) => match args.get(i + 1) {
                        Some(dir) => CachePolicy::At(dir.into()),
                        None => {
                            eprintln!("--cache requires a directory");
                            return ExitCode::FAILURE;
                        }
                    },
                    None => CachePolicy::Enabled,
                }
            };
            let options = SynthesisOptions {
                timeout: Duration::from_secs(grab("--timeout").unwrap_or(600)),
                seed: grab("--seed").unwrap_or(0x9E3779B9),
                parallelism: jobs,
                opt_level,
                scheme,
                latency: LatencyModel::profiled_for(scheme),
                params: policy,
                strategy,
                cache,
                ..SynthesisOptions::default()
            };
            // Reductions scaled past the strategy's wall synthesize
            // stage-wise (§6.3). The bottom-up term bank pushes the wall
            // past the DFS's ~10–12 instructions, so sizes that used to
            // require staging now go through the direct search.
            if let Some(len) = size {
                use porcupine_kernels::reduction as red;
                if red::direct_components(name, len)
                    .is_some_and(|c| c > red::direct_search_wall(options.strategy))
                {
                    let start = std::time::Instant::now();
                    let program = match red::synthesize_staged(name, len, &options)
                        .expect("direct_components implies a staged reduction")
                    {
                        Ok(p) => p,
                        Err(e) => {
                            eprintln!("staged synthesis failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let (optimized, opt_report) =
                        opt::optimize_with(&program, options.opt_level, &options.scheme.legality());
                    let params = porcupine::scheme::resolve_params(
                        options.scheme,
                        &options.params,
                        &optimized,
                        k.spec.n,
                        k.spec.t,
                    );
                    eprintln!(
                        "; multi-step (§6.3): {} stages, total {:.2?}, jobs: {}",
                        1 + len.ilog2(),
                        start.elapsed(),
                        options.parallelism,
                    );
                    eprintln!(
                        "; -{}: {} ({} instrs stitched → {} lowered, {} relin, {} rot)",
                        options.opt_level,
                        opt_report,
                        program.len(),
                        optimized.len(),
                        optimized.relin_count(),
                        optimized.rot_count(),
                    );
                    return finish_synth(
                        &k,
                        &optimized,
                        &params,
                        &options,
                        &args,
                        params_mode.is_some(),
                        eval_jobs,
                    );
                }
            }
            let sketch = if args.iter().any(|a| a == "--auto") {
                auto_sketch(&k.spec)
            } else if args.iter().any(|a| a == "--explicit") {
                let mut s = k.sketch.clone().with_explicit_rotations();
                s.max_components += 4; // room for materialized rotations
                s
            } else {
                k.sketch.clone()
            };
            match synthesize(&k.spec, &sketch, &options) {
                Ok(r) => {
                    eprintln!(
                        "; {} components, {} examples, initial {:.2?}, total {:.2?}, optimal: {}, jobs: {}",
                        r.components,
                        r.examples_used,
                        r.time_to_initial,
                        r.time_total,
                        r.proved_optimal,
                        options.parallelism,
                    );
                    eprintln!(
                        "; strategy: {}, cache: {}",
                        r.strategy_used,
                        if r.cache_hit { "hit" } else { "miss" },
                    );
                    eprintln!(
                        "; cost {:.0} (baseline {:.0}, {} latency model)",
                        r.final_cost,
                        eager_cost(&k.baseline, &options.latency),
                        options.scheme,
                    );
                    eprintln!(
                        "; -{}: {} ({} instrs searched → {} lowered, {} relin, {} rot)",
                        options.opt_level,
                        r.opt_report,
                        r.program.len(),
                        r.optimized.len(),
                        r.optimized.relin_count(),
                        r.optimized.rot_count(),
                    );
                    finish_synth(
                        &k,
                        &r.optimized,
                        &r.params,
                        &options,
                        &args,
                        params_mode.is_some(),
                        eval_jobs,
                    )
                }
                Err(e) => {
                    eprintln!("synthesis failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
