//! The Porcupine command-line driver: synthesize, inspect, and export the
//! paper's kernels from a shell.
//!
//! ```text
//! porcupine list                         # the kernel registry
//! porcupine synth gx                     # synthesize, print Quill + stats
//! porcupine synth gx --emit seal         # print generated SEAL C++
//! porcupine synth gx --explicit          # §7.4 ablation sketch mode
//! porcupine synth box-blur --auto        # infer the sketch from the spec
//! porcupine synth gx --jobs 4            # search with 4 worker threads
//! porcupine baseline gx                  # print the hand-written baseline
//! ```
//!
//! `--jobs` defaults to `PORCUPINE_JOBS` or the machine's available
//! parallelism; the synthesized program is identical at any value.

use porcupine::autosketch::auto_sketch;
use porcupine::cegis::{default_parallelism, synthesize, SynthesisOptions};
use porcupine::codegen::emit_seal_cpp;
use porcupine_kernels::{all_direct, PaperKernel};
use quill::cost::{cost, LatencyModel};
use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  porcupine list\n  porcupine synth <kernel> [--timeout <s>] [--emit seal|quill] [--explicit] [--auto] [--seed <n>] [--jobs <n>]\n  porcupine baseline <kernel> [--emit seal|quill]"
    );
    ExitCode::FAILURE
}

fn find_kernel(name: &str) -> Option<PaperKernel> {
    all_direct().into_iter().find(|k| k.name == name)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `porcupine dot-product` is shorthand for `porcupine synth dot-product`.
    if args.first().is_some_and(|a| find_kernel(a).is_some()) {
        args.insert(0, "synth".to_string());
    }
    let model = LatencyModel::profiled_default();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!(
                "{:<24} {:>6} {:>7} {:>7} {:>12}",
                "kernel", "instr", "depth", "mdepth", "cost"
            );
            for k in all_direct() {
                println!(
                    "{:<24} {:>6} {:>7} {:>7} {:>12.0}",
                    k.name,
                    k.baseline.len(),
                    k.baseline.logic_depth(),
                    k.baseline.mult_depth(),
                    cost(&k.baseline, &model),
                );
            }
            ExitCode::SUCCESS
        }
        Some("baseline") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(k) = find_kernel(name) else {
                eprintln!("unknown kernel '{name}' (try `porcupine list`)");
                return ExitCode::FAILURE;
            };
            if args.iter().any(|a| a == "seal") {
                print!("{}", emit_seal_cpp(&k.baseline));
            } else {
                print!("{}", k.baseline);
            }
            ExitCode::SUCCESS
        }
        Some("synth") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(k) = find_kernel(name) else {
                eprintln!("unknown kernel '{name}' (try `porcupine list`)");
                return ExitCode::FAILURE;
            };
            let grab = |flag: &str| -> Option<u64> {
                args.iter()
                    .position(|a| a == flag)
                    .and_then(|i| args.get(i + 1))
                    .and_then(|v| v.parse().ok())
            };
            let jobs = match grab("--jobs") {
                Some(n) => match NonZeroUsize::new(n as usize) {
                    Some(j) => j,
                    None => {
                        eprintln!("--jobs must be at least 1");
                        return ExitCode::FAILURE;
                    }
                },
                None => default_parallelism(),
            };
            let options = SynthesisOptions {
                timeout: Duration::from_secs(grab("--timeout").unwrap_or(600)),
                seed: grab("--seed").unwrap_or(0x9E3779B9),
                parallelism: jobs,
                ..SynthesisOptions::default()
            };
            let sketch = if args.iter().any(|a| a == "--auto") {
                auto_sketch(&k.spec)
            } else if args.iter().any(|a| a == "--explicit") {
                let mut s = k.sketch.clone().with_explicit_rotations();
                s.max_components += 4; // room for materialized rotations
                s
            } else {
                k.sketch.clone()
            };
            match synthesize(&k.spec, &sketch, &options) {
                Ok(r) => {
                    eprintln!(
                        "; {} components, {} examples, initial {:.2?}, total {:.2?}, optimal: {}, jobs: {}",
                        r.components,
                        r.examples_used,
                        r.time_to_initial,
                        r.time_total,
                        r.proved_optimal,
                        options.parallelism,
                    );
                    eprintln!(
                        "; cost {:.0} (baseline {:.0})",
                        r.final_cost,
                        cost(&k.baseline, &model)
                    );
                    if args.iter().any(|a| a == "seal") {
                        print!("{}", emit_seal_cpp(&r.program));
                    } else {
                        print!("{}", r.program);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("synthesis failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
