//! The Porcupine command-line driver: synthesize, inspect, and export the
//! paper's kernels from a shell.
//!
//! ```text
//! porcupine list                         # the kernel registry
//! porcupine synth gx                     # synthesize, print Quill + stats
//! porcupine synth gx --emit seal         # print generated SEAL C++
//! porcupine synth gx --explicit          # §7.4 ablation sketch mode
//! porcupine synth box-blur --auto        # infer the sketch from the spec
//! porcupine synth gx --jobs 4            # search with 4 worker threads
//! porcupine synth sobel-combine -O0      # middle-end level (also -O1/-O2)
//! porcupine baseline gx                  # print the hand-written baseline
//! ```
//!
//! `--jobs` defaults to `PORCUPINE_JOBS` or the machine's available
//! parallelism; the synthesized program is identical at any value. The
//! printed program is the middle-end's output at the selected `-O` level
//! (default: `PORCUPINE_OPT` or `-O2`) — backend-legal IR with explicit
//! `relin-ct` placement; `-O0` reproduces the eager
//! relin-after-every-multiply lowering.

use porcupine::autosketch::auto_sketch;
use porcupine::cegis::{default_parallelism, synthesize, SynthesisOptions};
use porcupine::codegen::emit_seal_cpp;
use porcupine::opt::{self, OptLevel};
use porcupine_kernels::{all_direct, PaperKernel};
use quill::cost::{eager_cost, LatencyModel};
use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  porcupine list\n  porcupine synth <kernel> [--timeout <s>] [--emit seal|quill] [--explicit] [--auto] [--seed <n>] [--jobs <n>] [-O<0|1|2>]\n  porcupine baseline <kernel> [--emit seal|quill] [-O<0|1|2>]"
    );
    ExitCode::FAILURE
}

fn find_kernel(name: &str) -> Option<PaperKernel> {
    all_direct().into_iter().find(|k| k.name == name)
}

/// Extracts an `-O0`/`-O1`/`-O2` (or `--opt-level <n>`) flag, if present.
fn parse_opt_level(args: &[String]) -> Result<Option<OptLevel>, String> {
    if let Some(i) = args.iter().position(|a| a == "--opt-level") {
        let v = args
            .get(i + 1)
            .ok_or_else(|| "--opt-level requires a value".to_string())?;
        return v.parse().map(Some);
    }
    match args.iter().find(|a| a.starts_with("-O")) {
        Some(flag) => flag.parse().map(Some),
        None => Ok(None),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `porcupine dot-product` is shorthand for `porcupine synth dot-product`.
    if args.first().is_some_and(|a| find_kernel(a).is_some()) {
        args.insert(0, "synth".to_string());
    }
    let model = LatencyModel::profiled_default();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!(
                "{:<24} {:>6} {:>7} {:>7} {:>12}",
                "kernel", "instr", "depth", "mdepth", "cost"
            );
            for k in all_direct() {
                println!(
                    "{:<24} {:>6} {:>7} {:>7} {:>12.0}",
                    k.name,
                    k.baseline.len(),
                    k.baseline.logic_depth(),
                    k.baseline.mult_depth(),
                    eager_cost(&k.baseline, &model),
                );
            }
            ExitCode::SUCCESS
        }
        Some("baseline") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(k) = find_kernel(name) else {
                eprintln!("unknown kernel '{name}' (try `porcupine list`)");
                return ExitCode::FAILURE;
            };
            // Without an explicit -O flag the raw baseline prints as-is;
            // with one, the middle-end runs first.
            let prog = match parse_opt_level(&args) {
                Ok(None) => k.baseline.clone(),
                Ok(Some(level)) => {
                    let (optimized, report) = opt::optimize(&k.baseline, level);
                    eprintln!("; -{level}: {report}");
                    optimized
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if args.iter().any(|a| a == "seal") {
                print!("{}", emit_seal_cpp(&prog));
            } else {
                print!("{prog}");
            }
            ExitCode::SUCCESS
        }
        Some("synth") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(k) = find_kernel(name) else {
                eprintln!("unknown kernel '{name}' (try `porcupine list`)");
                return ExitCode::FAILURE;
            };
            let grab = |flag: &str| -> Option<u64> {
                args.iter()
                    .position(|a| a == flag)
                    .and_then(|i| args.get(i + 1))
                    .and_then(|v| v.parse().ok())
            };
            let jobs = match grab("--jobs") {
                Some(n) => match NonZeroUsize::new(n as usize) {
                    Some(j) => j,
                    None => {
                        eprintln!("--jobs must be at least 1");
                        return ExitCode::FAILURE;
                    }
                },
                None => default_parallelism(),
            };
            let opt_level = match parse_opt_level(&args) {
                Ok(level) => level.unwrap_or_else(opt::default_opt_level),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let options = SynthesisOptions {
                timeout: Duration::from_secs(grab("--timeout").unwrap_or(600)),
                seed: grab("--seed").unwrap_or(0x9E3779B9),
                parallelism: jobs,
                opt_level,
                ..SynthesisOptions::default()
            };
            let sketch = if args.iter().any(|a| a == "--auto") {
                auto_sketch(&k.spec)
            } else if args.iter().any(|a| a == "--explicit") {
                let mut s = k.sketch.clone().with_explicit_rotations();
                s.max_components += 4; // room for materialized rotations
                s
            } else {
                k.sketch.clone()
            };
            match synthesize(&k.spec, &sketch, &options) {
                Ok(r) => {
                    eprintln!(
                        "; {} components, {} examples, initial {:.2?}, total {:.2?}, optimal: {}, jobs: {}",
                        r.components,
                        r.examples_used,
                        r.time_to_initial,
                        r.time_total,
                        r.proved_optimal,
                        options.parallelism,
                    );
                    eprintln!(
                        "; cost {:.0} (baseline {:.0})",
                        r.final_cost,
                        eager_cost(&k.baseline, &model)
                    );
                    eprintln!(
                        "; -{}: {} ({} instrs searched → {} lowered, {} relin, {} rot)",
                        options.opt_level,
                        r.opt_report,
                        r.program.len(),
                        r.optimized.len(),
                        r.optimized.relin_count(),
                        r.optimized.rot_count(),
                    );
                    if args.iter().any(|a| a == "seal") {
                        print!("{}", emit_seal_cpp(&r.optimized));
                    } else {
                        print!("{}", r.optimized);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("synthesis failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
