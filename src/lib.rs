//! Workspace root for the Porcupine reproduction. The real code lives in
//! `crates/*`; this package only hosts the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`.
