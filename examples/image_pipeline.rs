//! Encrypted image processing: synthesize the Gx/Gy gradient kernels for a
//! larger 6×6 image (stride 8 — Porcupine re-synthesizes for any layout),
//! compose the Sobel operator, and run it on an encrypted test image.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```

use bfv::encrypt::{Decryptor, Encryptor};
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine::codegen::BfvRunner;
use porcupine::layout::PaddedImage;
use porcupine_kernels::{composite, stencil};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6×6 interior with 1-pixel zero padding: 8×8 = 64 slots, stride 8.
    let img = PaddedImage::new(6, 6, 1);
    let options = SynthesisOptions::default();

    println!(
        "== synthesizing gradient kernels for stride {} ==",
        img.stride()
    );
    let gx = synthesize(&stencil::gx(img).spec, &stencil::gx(img).sketch, &options)?;
    let gy = synthesize(&stencil::gy(img).spec, &stencil::gy(img).sketch, &options)?;
    let combine_k = composite::sobel_combine(img.slots());
    let combine = synthesize(&combine_k.spec, &combine_k.sketch, &options)?;
    println!(
        "gx: {} instrs, gy: {} instrs, combine: {} instrs",
        gx.program.len(),
        gy.program.len(),
        combine.program.len()
    );
    let sobel_raw = composite::sobel_from(&gx.program, &gy.program, &combine.program);
    // Lower through the middle-end: global CSE + rotation folding + lazy
    // relinearization make the composed pipeline both legal and cheaper
    // than the eager -O0 lowering.
    let (sobel, report) = porcupine::opt::optimize(&sobel_raw, porcupine::opt::OptLevel::O2);
    println!(
        "composed sobel: {} instructions at -O2 ({} relin, {} rot; {report}), mult depth {}\n",
        sobel.len(),
        sobel.relin_count(),
        sobel.rot_count(),
        sobel.mult_depth()
    );

    // A vertical bright bar on dark background.
    #[rustfmt::skip]
    let pixels: Vec<u64> = vec![
        0, 0, 9, 9, 0, 0,
        0, 0, 9, 9, 0, 0,
        0, 0, 9, 9, 0, 0,
        0, 0, 9, 9, 0, 0,
        0, 0, 9, 9, 0, 0,
        0, 0, 9, 9, 0, 0,
    ];
    let slots = img.pack(&pixels);

    let ctx = BfvContext::new(BfvParams::fast_4096())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
    let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
    let runner = BfvRunner::for_programs(&ctx, &keygen, &[&sobel], &mut rng);

    let encoder = runner.encoder();
    let ct = encryptor.encrypt(&encoder.encode(&slots), &mut rng);
    let out = runner.run(&sobel, &[&ct], &[]);
    let decoded = encoder.decode(&decryptor.decrypt(&out));
    let edges = img.unpack(&decoded);

    println!("encrypted Sobel edge magnitude (squared):");
    for r in 0..img.rows {
        let row: Vec<String> = (0..img.cols)
            .map(|c| format!("{:>5}", edges[r * img.cols + c]))
            .collect();
        println!("  {}", row.join(" "));
    }
    println!(
        "\nnoise budget after pipeline: {} bits",
        decryptor.invariant_noise_budget(&out)
    );
    // Edges fire on the bar boundaries (columns 1–2 and 3–4), not inside.
    assert!(edges[6 + 1] > 0, "edge expected at the bar boundary");
    Ok(())
}
