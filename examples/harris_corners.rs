//! Encrypted Harris corner detection — the paper's largest multi-step
//! application (§7.2): gradients, structure-tensor blurs, and the corner
//! response, all under encryption. The client decrypts the response map
//! and applies the threshold (the branch HE cannot evaluate, §7.1).
//!
//! ```text
//! cargo run --release --example harris_corners
//! ```

use bfv::encrypt::{Decryptor, Encryptor};
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine::codegen::BfvRunner;
use porcupine_kernels::{composite, stencil};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let img = stencil::default_image(); // 3×3 interior, 5×5 packed
    let options = SynthesisOptions::default();

    println!("== synthesizing the five Harris stages ==");
    let stages = composite::HarrisStages {
        gx: synthesize(&stencil::gx(img).spec, &stencil::gx(img).sketch, &options)?.program,
        gy: synthesize(&stencil::gy(img).spec, &stencil::gy(img).sketch, &options)?.program,
        blur: synthesize(
            &stencil::box_blur(img).spec,
            &stencil::box_blur(img).sketch,
            &options,
        )?
        .program,
        det: synthesize(
            &composite::harris_det(img.slots()).spec,
            &composite::harris_det(img.slots()).sketch,
            &options,
        )?
        .program,
        trace: synthesize(
            &composite::harris_trace(img.slots()).spec,
            &composite::harris_trace(img.slots()).sketch,
            &options,
        )?
        .program,
    };
    let harris_raw = composite::harris_from(&stages);
    let baseline = composite::harris_baseline(img);
    // Lower through the middle-end before touching real ciphertexts.
    let (harris, report) = porcupine::opt::optimize(&harris_raw, porcupine::opt::OptLevel::O2);
    println!(
        "composed harris: {} instructions at -O2 (baseline {}; {report}), mult depth {}\n",
        harris.len(),
        baseline.len(),
        harris.mult_depth()
    );

    // A bright corner patch in the top-left of the interior.
    let pixels = vec![9, 9, 0, 9, 9, 0, 0, 0, 0];
    let slots = img.pack(&pixels);

    // Harris needs multiplicative depth 3; use the 128-bit secure preset.
    let ctx = BfvContext::new(BfvParams::secure_128())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
    let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
    let runner = BfvRunner::for_programs(&ctx, &keygen, &[&harris], &mut rng);

    let encoder = runner.encoder();
    let ct = encryptor.encrypt(&encoder.encode(&slots), &mut rng);
    println!(
        "running encrypted Harris pipeline ({} HE instructions)…",
        harris.len()
    );
    let out = runner.run(&harris, &[&ct], &[]);
    let budget = decryptor.invariant_noise_budget(&out);
    println!("noise budget after pipeline: {budget} bits");
    assert!(budget > 0, "parameters must survive the whole pipeline");

    let decoded = encoder.decode(&decryptor.decrypt(&out));
    // Client-side: compare the response at the corner against the spec.
    let spec = composite::harris_spec(img);
    let expected = spec.eval_concrete(std::slice::from_ref(&slots), &[]);
    let center = img.index(1, 1);
    println!(
        "response at interior centre: {} (plaintext reference: {})",
        decoded[center], expected[center]
    );
    assert_eq!(decoded[center], expected[center]);
    println!("encrypted Harris response matches the plaintext reference ✓");
    Ok(())
}
