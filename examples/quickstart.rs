//! Quickstart: synthesize an encrypted dot-product kernel from its
//! plaintext specification, inspect the generated code, and run it under
//! real BFV encryption.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bfv::encrypt::{Decryptor, Encryptor};
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine::codegen::{emit_seal_cpp, BfvRunner};
use porcupine_kernels::reduction;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper workload: dot product of 8 packed elements against a
    //    server-side plaintext weight vector (Figure 2).
    let kernel = reduction::dot_product(8);
    println!("== synthesizing `{}` ==", kernel.name);
    let result = synthesize(&kernel.spec, &kernel.sketch, &SynthesisOptions::default())?;
    println!(
        "found {} components in {:.2?} ({} examples, optimal: {})\n",
        result.components, result.time_total, result.examples_used, result.proved_optimal
    );
    println!("-- synthesized Quill kernel --\n{}", result.program);
    // `optimized` is the middle-end's lowering (relinearizations placed,
    // backend-legal IR) — what the runner and the C++ emitter consume.
    println!(
        "-- generated SEAL C++ --\n{}",
        emit_seal_cpp(&result.optimized)
    );

    // 2. Run it for real: encrypt a client vector, evaluate homomorphically,
    //    decrypt.
    let ctx = BfvContext::new(BfvParams::fast_4096())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
    let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
    let runner = BfvRunner::for_programs(&ctx, &keygen, &[&result.optimized], &mut rng);

    let x = [3u64, 1, 4, 1, 5, 9, 2, 6];
    let w = [2u64, 7, 1, 8, 2, 8, 1, 8];
    let mut x_slots = vec![0u64; kernel.spec.n];
    let mut w_slots = vec![0u64; kernel.spec.n];
    x_slots[..8].copy_from_slice(&x);
    w_slots[..8].copy_from_slice(&w);

    let encoder = runner.encoder();
    let ct = encryptor.encrypt(&encoder.encode(&x_slots), &mut rng);
    let pt = encoder.encode(&w_slots);
    let out = runner.run(&result.optimized, &[&ct], &[&pt]);

    let decoded = encoder.decode(&decryptor.decrypt(&out));
    let expected: u64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
    println!(
        "encrypted dot product = {} (expected {})",
        decoded[0], expected
    );
    println!(
        "remaining noise budget: {} bits",
        decryptor.invariant_noise_budget(&out)
    );
    assert_eq!(decoded[0], expected);
    Ok(())
}
