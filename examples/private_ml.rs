//! Private model evaluation: a client sends encrypted features; the server
//! evaluates linear and polynomial regression models without seeing the
//! data — using Porcupine-synthesized kernels, including the factored
//! quadratic `(a·x + b)·x + c` the synthesizer discovers (§7.2).
//!
//! ```text
//! cargo run --release --example private_ml
//! ```

use bfv::encrypt::{Decryptor, Encryptor};
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use porcupine::cegis::{synthesize, SynthesisOptions};
use porcupine::codegen::BfvRunner;
use porcupine_kernels::pointwise;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = 8;
    let options = SynthesisOptions::default();

    let lin_k = pointwise::linear_regression(batch);
    let lin = synthesize(&lin_k.spec, &lin_k.sketch, &options)?;
    let poly_k = pointwise::polynomial_regression(batch);
    let poly = synthesize(&poly_k.spec, &poly_k.sketch, &options)?;
    println!(
        "linear model: {} instrs | quadratic model: {} instrs (baseline {})",
        lin.program.len(),
        poly.program.len(),
        poly_k.baseline.len()
    );
    println!(
        "-- synthesized quadratic (note the factored form) --\n{}",
        poly.program
    );

    let ctx = BfvContext::new(BfvParams::fast_4096())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let encryptor = Encryptor::new(&ctx, keygen.public_key(&mut rng));
    let decryptor = Decryptor::new(&ctx, keygen.secret_key().clone());
    let runner =
        BfvRunner::for_programs(&ctx, &keygen, &[&lin.optimized, &poly.optimized], &mut rng);
    let encoder = runner.encoder();

    // Client: a batch of encrypted feature pairs.
    let x1: Vec<u64> = vec![3, 7, 2, 9, 4, 1, 8, 5];
    let x2: Vec<u64> = vec![10, 20, 5, 12, 7, 30, 2, 9];
    let ct_x1 = encryptor.encrypt(&encoder.encode(&x1), &mut rng);
    let ct_x2 = encryptor.encrypt(&encoder.encode(&x2), &mut rng);

    // Server: model parameters stay in plaintext on the server.
    let theta = [3u64, 5, 40]; // y = 3·x1 + 5·x2 + 40
    let pts: Vec<_> = theta
        .iter()
        .map(|&v| encoder.encode(&vec![v; batch]))
        .collect();
    let out = runner.run(
        &lin.optimized,
        &[&ct_x1, &ct_x2],
        &[&pts[0], &pts[1], &pts[2]],
    );
    let y = encoder.decode(&decryptor.decrypt(&out));
    println!("\nlinear predictions:    {:?}", &y[..batch]);
    for i in 0..batch {
        assert_eq!(y[i], 3 * x1[i] + 5 * x2[i] + 40);
    }

    // Quadratic model y = 2·x² + 7·x + 11 on the first feature.
    let abc = [2u64, 7, 11];
    let pts: Vec<_> = abc
        .iter()
        .map(|&v| encoder.encode(&vec![v; batch]))
        .collect();
    let out = runner.run(&poly.optimized, &[&ct_x1], &[&pts[0], &pts[1], &pts[2]]);
    let y = encoder.decode(&decryptor.decrypt(&out));
    println!("quadratic predictions: {:?}", &y[..batch]);
    for i in 0..batch {
        assert_eq!(y[i], 2 * x1[i] * x1[i] + 7 * x1[i] + 11);
    }
    println!("\nall predictions verified against plaintext evaluation ✓");
    Ok(())
}
