//! End-to-end synthesis tests: the CEGIS engine must reproduce the paper's
//! headline results on the fast kernels — minimal component counts,
//! Table 2 instruction counts, symbolic correctness, and padding
//! stability. (The slow kernels, L2 and Roberts cross, are exercised by the
//! bench harness with longer budgets.)

use porcupine::cegis::synthesize;
use porcupine::lift::check_padding_stable;
use porcupine::verify::verify;
use porcupine_kernels::{pointwise, reduction, stencil};
use quill::cost::{cost, LatencyModel};
use test_support::{fast_synthesis_options, seeded_rng, with_jobs};

#[test]
fn box_blur_matches_figure_5() {
    let k = stencil::box_blur(stencil::default_image());
    let r =
        synthesize(&k.spec, &k.sketch, &fast_synthesis_options()).expect("box blur synthesizes");
    // Figure 5(a): 4 instructions (2 adds + 2 rotations) vs baseline 6.
    assert_eq!(r.program.len(), 4, "\n{}", r.program);
    assert_eq!(r.components, 2);
    assert!(r.program.len() < k.baseline.len());
    // The separable decomposition has higher logic depth but the same
    // multiplicative depth (the noise argument of §7.3).
    assert!(r.program.logic_depth() > k.baseline.logic_depth());
    assert_eq!(r.program.mult_depth(), k.baseline.mult_depth());
    // And strictly lower modelled cost.
    let m = LatencyModel::profiled_default();
    assert!(cost(&r.program, &m) < cost(&k.baseline, &m));
}

#[test]
fn gx_matches_table_2() {
    let k = stencil::gx(stencil::default_image());
    let r = synthesize(&k.spec, &k.sketch, &fast_synthesis_options()).expect("gx synthesizes");
    // Table 2: synthesized Gx has 7 instructions (3 arith + 4 rotations).
    assert_eq!(r.program.len(), 7, "\n{}", r.program);
    assert_eq!(r.components, 3);
    let mut rng = seeded_rng(2);
    verify(&r.program, &k.spec, &mut rng).expect("synthesized gx verifies");
    check_padding_stable(&r.program, k.spec.n, &k.spec.output_mask, k.spec.t)
        .expect("synthesized gx lifts");
}

#[test]
fn dot_product_matches_table_2() {
    let k = reduction::dot_product(8);
    let r =
        synthesize(&k.spec, &k.sketch, &fast_synthesis_options()).expect("dot product synthesizes");
    // Table 2: 7 instructions for both baseline and synthesized, depth 7.
    assert_eq!(r.program.len(), 7);
    assert_eq!(r.program.len(), k.baseline.len());
    assert_eq!(r.program.logic_depth(), 7);
}

#[test]
fn hamming_distance_matches_table_2() {
    let k = reduction::hamming_distance(4);
    let r = synthesize(&k.spec, &k.sketch, &fast_synthesis_options()).expect("hamming synthesizes");
    assert_eq!(r.program.len(), 6, "\n{}", r.program);
    assert_eq!(r.program.logic_depth(), 6);
    // Single-value outputs need more counter-examples (§7.4).
    assert!(r.examples_used >= 2);
}

#[test]
fn polynomial_regression_discovers_factorization() {
    let k = pointwise::polynomial_regression(8);
    let r =
        synthesize(&k.spec, &k.sketch, &fast_synthesis_options()).expect("poly reg synthesizes");
    // The factored form (a·x + b)·x + c: 4 instructions vs 5 in the
    // baseline, and one fewer plaintext multiply (§7.2's algebraic
    // optimization).
    assert_eq!(r.program.len(), 4, "\n{}", r.program);
    let synth_muls: usize = r
        .program
        .opcode_counts()
        .iter()
        .filter(|(op, _)| op.starts_with("mul"))
        .map(|(_, c)| c)
        .sum();
    let base_muls: usize = k
        .baseline
        .opcode_counts()
        .iter()
        .filter(|(op, _)| op.starts_with("mul"))
        .map(|(_, c)| c)
        .sum();
    assert!(synth_muls < base_muls, "factoring must drop a multiply");
}

#[test]
fn linear_regression_matches_baseline() {
    let k = pointwise::linear_regression(8);
    let r = synthesize(&k.spec, &k.sketch, &fast_synthesis_options()).expect("lin reg synthesizes");
    // Paper: baseline and synthesized coincide (4 instructions).
    assert_eq!(r.program.len(), 4);
    assert!(r.proved_optimal);
}

/// The §7.4 ablation: box blur with *explicit* rotation components instead
/// of the local-rotate sketch. The search space is far larger than the
/// local-rotate one (the paper reports minutes instead of seconds) and this
/// was `#[ignore]`d as a budget risk, but measured against the parallel
/// search rework it finishes in well under a second at every
/// `PORCUPINE_JOBS` level — comfortably inside the tier-1 budget — so it
/// now runs in the normal suite.
#[test]
fn box_blur_synthesizes_with_explicit_rotation_sketch() {
    let k = stencil::box_blur(stencil::default_image());
    let mut sketch = k.sketch.clone().with_explicit_rotations();
    sketch.max_components += 4; // room for materialized rotations
    let mut options = fast_synthesis_options();
    options.timeout = std::time::Duration::from_secs(1800);
    let r = synthesize(&k.spec, &sketch, &options).expect("explicit box blur synthesizes");
    let mut rng = seeded_rng(4);
    verify(&r.program, &k.spec, &mut rng).expect("explicit box blur verifies");
}

/// Guard for future parallel-search work: with a fixed seed and options,
/// `synthesize` is a pure function of the spec and sketch — two runs on a
/// real paper kernel return identical programs and identical costs.
#[test]
fn synthesis_of_paper_kernels_is_deterministic() {
    for k in [reduction::dot_product(8), reduction::hamming_distance(4)] {
        let a = synthesize(&k.spec, &k.sketch, &fast_synthesis_options())
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let b = synthesize(&k.spec, &k.sketch, &fast_synthesis_options())
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        assert_eq!(a.program, b.program, "{}: program differs", k.name);
        assert_eq!(
            a.final_cost.to_bits(),
            b.final_cost.to_bits(),
            "{}: cost differs",
            k.name
        );
        assert_eq!(a.components, b.components, "{}", k.name);
        assert_eq!(a.examples_used, b.examples_used, "{}", k.name);
    }
}

/// The parallel-search determinism contract, end to end: for the same seed,
/// synthesis at 2 and 4 worker threads returns programs and costs
/// bit-identical to the sequential run, on real paper kernels spanning both
/// search modes (first-solution deepening and exhaustive optimization).
#[test]
fn parallel_synthesis_matches_sequential_bit_for_bit() {
    let img = stencil::default_image();
    for k in [
        stencil::box_blur(img),
        reduction::dot_product(8),
        reduction::hamming_distance(4),
    ] {
        let seq = synthesize(&k.spec, &k.sketch, &with_jobs(fast_synthesis_options(), 1))
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        for jobs in [2, 4] {
            let par = synthesize(
                &k.spec,
                &k.sketch,
                &with_jobs(fast_synthesis_options(), jobs),
            )
            .unwrap_or_else(|e| panic!("{} (jobs={jobs}): {e}", k.name));
            assert_eq!(
                seq.program, par.program,
                "{}: program differs at jobs={jobs}",
                k.name
            );
            assert_eq!(
                seq.initial_program, par.initial_program,
                "{}: initial program differs at jobs={jobs}",
                k.name
            );
            assert_eq!(
                seq.final_cost.to_bits(),
                par.final_cost.to_bits(),
                "{}: cost differs at jobs={jobs}",
                k.name
            );
            assert_eq!(seq.components, par.components, "{}", k.name);
            assert_eq!(seq.examples_used, par.examples_used, "{}", k.name);
            assert_eq!(seq.proved_optimal, par.proved_optimal, "{}", k.name);
        }
    }
}

#[test]
fn synthesized_kernels_are_all_verified_and_liftable() {
    let mut rng = seeded_rng(3);
    let img = stencil::default_image();
    for k in [
        stencil::box_blur(img),
        stencil::gx(img),
        stencil::gy(img),
        reduction::dot_product(8),
        reduction::hamming_distance(4),
    ] {
        let r = synthesize(&k.spec, &k.sketch, &fast_synthesis_options())
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        verify(&r.program, &k.spec, &mut rng).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        check_padding_stable(&r.program, k.spec.n, &k.spec.output_mask, k.spec.t)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        // Synthesized never loses to the expert baseline under the model.
        let m = LatencyModel::profiled_default();
        assert!(
            cost(&r.program, &m) <= cost(&k.baseline, &m) + 1e-9,
            "{}: synthesized cost must not exceed baseline",
            k.name
        );
    }
}
