//! Middle-end integration: the acceptance criteria of the optimizing
//! pipeline on the paper's real workloads.
//!
//! * `-O0` reproduces the pre-middle-end compiler exactly (one
//!   relinearization immediately after every ct×ct multiply).
//! * On the Harris and Sobel multistep pipelines, `-O2` strictly reduces
//!   the relin + rotation instruction count *and* the modeled
//!   `program_latency`, and the optimized programs decrypt bit-identically
//!   to the `-O0` lowerings on the BFV backend.
//! * Re-running `-O2` on already-optimized programs is a fixpoint with
//!   zero rewrites (the CI idempotence check).

use porcupine::codegen::BfvRunner;
use porcupine::opt::{optimize, OptLevel};
use porcupine_kernels::{all_direct, composite, stencil};
use quill::cost::LatencyModel;
use quill::program::{Instr, Program, ValRef};
use test_support::{sample_model_inputs, seeded_rng, small_ctx, HeSession};

fn pipelines() -> Vec<Program> {
    let img = stencil::default_image();
    vec![
        composite::sobel_baseline(img),
        composite::harris_baseline(img),
    ]
}

/// The `-O0` contract: byte-for-byte the old lowering — every multiply is
/// immediately followed by its relinearization and nothing else changes.
#[test]
fn o0_reproduces_the_eager_lowering_exactly() {
    for prog in pipelines()
        .into_iter()
        .chain(all_direct().into_iter().map(|k| k.baseline))
    {
        let (o0, _) = optimize(&prog, OptLevel::O0);
        assert_eq!(
            o0.len(),
            prog.len() + prog.ct_ct_mul_count(),
            "{}",
            prog.name
        );
        assert_eq!(o0.relin_count(), prog.ct_ct_mul_count(), "{}", prog.name);
        // Every relin directly follows a multiply and consumes it.
        for (i, instr) in o0.instrs.iter().enumerate() {
            if let Instr::Relin(a) = instr {
                assert_eq!(
                    *a,
                    ValRef::Instr(i - 1),
                    "{}: relin not adjacent",
                    prog.name
                );
                assert!(
                    matches!(o0.instrs[i - 1], Instr::MulCtCt(..)),
                    "{}: relin not after a multiply",
                    prog.name
                );
            }
        }
        // Erasing the relins gives back the input program.
        let without: Vec<&Instr> = o0
            .instrs
            .iter()
            .filter(|i| !matches!(i, Instr::Relin(_)))
            .collect();
        assert_eq!(without.len(), prog.len(), "{}", prog.name);
    }
}

/// The headline acceptance criterion: `-O2` strictly beats `-O0` on the
/// multistep pipelines, in executed key-switch instructions and in modeled
/// latency.
#[test]
fn o2_strictly_reduces_pipeline_instructions_and_latency() {
    let model = LatencyModel::profiled_default();
    for prog in pipelines() {
        let (o0, _) = optimize(&prog, OptLevel::O0);
        let (o2, _) = optimize(&prog, OptLevel::O2);
        let heavy0 = o0.relin_count() + o0.rot_count();
        let heavy2 = o2.relin_count() + o2.rot_count();
        assert!(
            o2.relin_count() < o0.relin_count(),
            "{}: relins {} !< {}",
            prog.name,
            o2.relin_count(),
            o0.relin_count()
        );
        assert!(o2.rot_count() <= o0.rot_count(), "{}", prog.name);
        assert!(heavy2 < heavy0, "{}: {heavy2} !< {heavy0}", prog.name);
        assert!(
            o2.len() < o0.len(),
            "{}: total instruction count",
            prog.name
        );
        assert!(
            model.program_latency(&o2) < model.program_latency(&o0),
            "{}: latency {} !< {}",
            prog.name,
            model.program_latency(&o2),
            model.program_latency(&o0)
        );
    }
}

/// The `-O0` and `-O2` lowerings of each pipeline decrypt bit-identically
/// on the BFV backend from the same encrypted input.
#[test]
fn pipeline_lowerings_decrypt_bit_identically() {
    let ctx = small_ctx();
    let img = stencil::default_image();
    for (seed, prog) in pipelines().into_iter().enumerate() {
        let mut rng = seeded_rng(0x0B7 + seed as u64);
        let session = HeSession::new(&ctx, &mut rng);
        let (o0, _) = optimize(&prog, OptLevel::O0);
        let (o2, _) = optimize(&prog, OptLevel::O2);
        let runner = BfvRunner::for_programs(&ctx, &session.keygen, &[&o0, &o2], &mut rng);
        let encoder = runner.encoder();

        let inputs = sample_model_inputs(prog.num_ct_inputs, img.slots(), 32, &mut rng);
        let cts: Vec<bfv::Ciphertext> = inputs
            .iter()
            .map(|v| session.encryptor.encrypt(&encoder.encode(v), &mut rng))
            .collect();
        let refs: Vec<&bfv::Ciphertext> = cts.iter().collect();

        let run = |p: &Program| {
            let out = runner.run(p, &refs, &[]);
            let budget = session.decryptor.invariant_noise_budget(&out);
            assert!(budget > 0, "{}: noise budget exhausted ({budget})", p.name);
            encoder.decode(&session.decryptor.decrypt(&out))
        };
        assert_eq!(run(&o0), run(&o2), "{}: decryptions differ", prog.name);
    }
}

/// The CI idempotence check: `-O2` on already-optimized programs — every
/// paper kernel baseline and both multistep pipelines — is a fixpoint with
/// zero rewrites.
#[test]
fn o2_is_a_fixpoint_on_optimized_programs() {
    for prog in all_direct()
        .into_iter()
        .map(|k| k.baseline)
        .chain(pipelines())
    {
        let (once, _) = optimize(&prog, OptLevel::O2);
        let (twice, report) = optimize(&once, OptLevel::O2);
        assert_eq!(once, twice, "{}: -O2 not idempotent", prog.name);
        assert_eq!(
            report.total_rewrites, 0,
            "{}: fixpoint reports rewrites ({report})",
            prog.name
        );
    }
}
