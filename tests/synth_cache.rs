//! Persistent synthesis-cache integration (ISSUE 7): a warm cache answers
//! the same query with the byte-identical program **without invoking the
//! search at all**, and every corruption mode falls back to a cold
//! rebuild.
//!
//! The cache is two-tier — an in-process memo in front of the disk
//! entries — so the disk-tier tests call
//! [`porcupine::clear_synthesis_memo`] before each warm query: without
//! it the memo would answer and the disk path (read, parse, re-verify)
//! would go untested.
//!
//! The cold/warm pairs and the invocation-counter deltas live inside
//! single `#[test]` functions — `porcupine::search_invocations` is a
//! process-wide counter (and the memo is process-wide state), and
//! splitting the assertions across tests would race under the parallel
//! test runner.

use porcupine::cegis::{synthesize, CachePolicy, SearchStrategy};
use porcupine::{clear_synthesis_memo, search_invocations};
use porcupine_kernels::{reduction, stencil};
use quill::scheme::SchemeId;
use test_support::{fast_synthesis_options, with_strategy};

/// A fresh cache directory under the target-dir scratch space.
fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("porcupine-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cold run populates the cache; the warm run returns the byte-identical
/// program as a cache hit with **zero** search invocations.
#[test]
fn warm_cache_skips_the_search_entirely() {
    let dir = temp_cache_dir("warm");
    let k = stencil::box_blur(stencil::default_image());
    let mut options = fast_synthesis_options();
    options.cache = CachePolicy::At(dir.clone());

    let cold = synthesize(&k.spec, &k.sketch, &options).expect("cold box blur");
    assert!(!cold.cache_hit);

    // Disk tier: clear the memo so the warm query must read, parse, and
    // re-verify the persisted entry.
    clear_synthesis_memo();
    let before = search_invocations();
    let warm = synthesize(&k.spec, &k.sketch, &options).expect("warm box blur");
    let after = search_invocations();
    assert!(warm.cache_hit, "second identical query must hit the cache");
    assert_eq!(
        after - before,
        0,
        "a cache hit must not invoke the search at all"
    );
    assert_eq!(
        warm.program.to_string(),
        cold.program.to_string(),
        "cold and warm programs must be byte-identical"
    );
    assert_eq!(warm.final_cost.to_bits(), cold.final_cost.to_bits());

    // Memo tier: the entry is now in-process; even with the disk entry
    // deleted, the same query replays as a hit with zero searches.
    for entry in std::fs::read_dir(&dir).expect("cache dir").flatten() {
        let _ = std::fs::remove_file(entry.path());
    }
    let before = search_invocations();
    let memo = synthesize(&k.spec, &k.sketch, &options).expect("memoized box blur");
    assert!(memo.cache_hit, "in-process memo must answer repeat queries");
    assert_eq!(
        search_invocations() - before,
        0,
        "a memo hit must not invoke the search at all"
    );
    assert_eq!(memo.program.to_string(), cold.program.to_string());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cache key covers the whole query: changing the strategy, the
/// optimization flag, or the kernel misses instead of returning a stale
/// program.
#[test]
fn cache_keys_separate_distinct_queries() {
    let dir = temp_cache_dir("keys");
    let k = stencil::box_blur(stencil::default_image());
    let mut options = with_strategy(fast_synthesis_options(), SearchStrategy::BottomUp);
    options.cache = CachePolicy::At(dir.clone());
    let _ = synthesize(&k.spec, &k.sketch, &options).expect("cold box blur");

    // Different strategy: same semantics, different key — a miss.
    let dfs = synthesize(
        &k.spec,
        &k.sketch,
        &with_strategy(options.clone(), SearchStrategy::Dfs),
    )
    .expect("dfs box blur");
    assert!(!dfs.cache_hit, "strategy is part of the cache key");

    // Different kernel, same cache dir: a miss, not a collision.
    let other = reduction::hamming_distance(4);
    let r = synthesize(&other.spec, &other.sketch, &options).expect("hamming");
    assert!(!r.cache_hit, "distinct specs must not share entries");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The scheme backend is part of the cache key: the same spec and sketch
/// synthesized for BGV must miss an entry written for BFV (format v2) —
/// the two schemes lower and cost differently, so replaying a BFV answer
/// for a BGV query would be a stale-result bug.
#[test]
fn changing_the_scheme_misses_the_cache() {
    let dir = temp_cache_dir("scheme");
    let k = reduction::hamming_distance(4);
    let mut options = fast_synthesis_options();
    options.cache = CachePolicy::At(dir.clone());
    // Pin the scheme explicitly: the options default follows
    // `PORCUPINE_SCHEME`, and this test must compare the two fixed
    // backends whatever leg of the CI matrix it runs under.
    options.scheme = SchemeId::Bfv;

    let cold = synthesize(&k.spec, &k.sketch, &options).expect("cold bfv hamming");
    assert!(!cold.cache_hit);

    // Same query, BGV backend: different key, so a miss — even though the
    // in-process memo and the disk tier both hold the BFV answer.
    let mut bgv_options = options.clone();
    bgv_options.scheme = SchemeId::Bgv;
    let bgv = synthesize(&k.spec, &k.sketch, &bgv_options).expect("cold bgv hamming");
    assert!(!bgv.cache_hit, "scheme is part of the cache key");

    // Both entries persist side by side, each naming its scheme in the
    // stored key text.
    let mut schemes_seen = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("cache dir").flatten() {
        let bytes = std::fs::read(entry.path()).expect("entry readable");
        let text = String::from_utf8_lossy(&bytes);
        for id in ["scheme bfv", "scheme bgv"] {
            if text.contains(id) {
                schemes_seen.push(id);
            }
        }
    }
    schemes_seen.sort_unstable();
    assert_eq!(
        schemes_seen,
        ["scheme bfv", "scheme bgv"],
        "each entry stores its scheme config line"
    );

    // And each scheme's own warm replay still hits.
    clear_synthesis_memo();
    assert!(
        synthesize(&k.spec, &k.sketch, &options)
            .expect("warm bfv")
            .cache_hit,
        "bfv entry survives alongside the bgv one"
    );
    clear_synthesis_memo();
    assert!(
        synthesize(&k.spec, &k.sketch, &bgv_options)
            .expect("warm bgv")
            .cache_hit,
        "bgv entry survives alongside the bfv one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every corruption mode — truncation, bit flips, a version bump, or raw
/// garbage — turns into a silent cold rebuild that repairs the entry.
#[test]
fn corrupted_entries_rebuild_cold() {
    let dir = temp_cache_dir("corrupt");
    let k = stencil::gx(stencil::default_image());
    let mut options = fast_synthesis_options();
    options.cache = CachePolicy::At(dir.clone());
    let cold = synthesize(&k.spec, &k.sketch, &options).expect("cold gx");

    let entry = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "synth"))
        .expect("cold run stored an entry");
    let pristine = std::fs::read(&entry).expect("entry readable");

    let corruptions: Vec<(&str, Vec<u8>)> = vec![
        ("truncated", pristine[..pristine.len() / 2].to_vec()),
        ("empty", Vec::new()),
        ("flipped", {
            let mut b = pristine.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x55;
            b
        }),
        ("garbage", b"not a cache entry at all\xff\xfe".to_vec()),
    ];
    for (name, bytes) in corruptions {
        std::fs::write(&entry, &bytes).expect("rewrite entry");
        // Force each query down to the disk tier: with the memo in place
        // the corrupted file would never even be read.
        clear_synthesis_memo();
        let r = synthesize(&k.spec, &k.sketch, &options)
            .unwrap_or_else(|e| panic!("{name}: corrupted cache must not fail synthesis: {e}"));
        assert!(!r.cache_hit, "{name}: corrupted entry must miss");
        assert_eq!(
            r.program.to_string(),
            cold.program.to_string(),
            "{name}: rebuild must reproduce the canonical program"
        );
        // The rebuild wrote the entry back; confirm the *disk* entry (not
        // the memo) hits again.
        clear_synthesis_memo();
        let warm = synthesize(&k.spec, &k.sketch, &options).expect("repaired gx");
        assert!(warm.cache_hit, "{name}: rebuilt entry must hit");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
