//! Differential testing across the whole pipeline: every paper kernel's
//! program runs through the Quill interpreter, the BFV backend under the
//! paper's fixed parameters, and the BFV backend under noise-aware
//! auto-selected parameters — all three must agree slot for slot, and the
//! auto leg must retain at least the selection margin of *measured* noise
//! budget (the selector's certificate, checked in practice).
//!
//! The backend legs execute the program lowered at `PORCUPINE_OPT` (the CI
//! matrix covers `-O0`/`-O1`/`-O2`), so every assertion here also
//! exercises the middle-end. A seeded sweep additionally runs randomized
//! kernel sizes through the same harness — sizes the paper never measured.
//!
//! The cross-scheme leg widens the harness across backends: every paper
//! kernel must decrypt slot-identically on the interpreter, the BFV
//! backend, and the BGV backend — each scheme under its own auto-selected
//! parameters and (noise model permitting) the shared paper set.

use porcupine::cegis::synthesize;
use porcupine_kernels::{all_direct, direct_kernel, reduction};
use quill::scheme::SchemeId;
use rand::Rng;
use test_support::differential::{assert_cross_scheme_spec, assert_differential_spec};
use test_support::{fast_synthesis_options, seeded_rng};

/// The slow-synthesis pair exercised with longer budgets by the bench
/// harness (see `tests/end_to_end_synthesis.rs`); the differential suite
/// runs their verified baselines instead of re-searching.
const SLOW_SYNTHESIS: [&str; 2] = ["l2-distance", "roberts-cross"];

/// Every one of the nine Table 2/3 kernels, synthesized where the search
/// is fast, decrypts bit-identically under the paper parameters and the
/// auto-selected ones.
#[test]
fn paper_kernels_decrypt_identically_under_paper_and_auto_params() {
    for (i, k) in all_direct().into_iter().enumerate() {
        let prog = if SLOW_SYNTHESIS.contains(&k.name) {
            k.baseline.clone()
        } else {
            synthesize(&k.spec, &k.sketch, &fast_synthesis_options())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name))
                .program
        };
        let report = assert_differential_spec(&prog, &k.spec, 64, 0x0D1F + i as u64);
        // The nine kernels are shallow; none should be pushed to the
        // paper-size ring by selection.
        assert!(
            report.auto_params.poly_degree <= 8192,
            "{}: selected N = {}",
            k.name,
            report.auto_params.poly_degree
        );
    }
}

/// Cross-scheme differential: all nine Table 2/3 kernels (their verified
/// baselines — synthesis is covered by the legs above) decrypt
/// slot-identically on the interpreter, the BFV backend, and the BGV
/// backend. Each scheme runs under its own auto-selected parameters, so
/// both selectors' certificates are checked in practice on every kernel;
/// the paper-parameter leg additionally runs wherever the scheme's noise
/// model clears it.
#[test]
fn paper_kernels_decrypt_identically_across_schemes() {
    for (i, k) in all_direct().into_iter().enumerate() {
        let legs = assert_cross_scheme_spec(&k.baseline, &k.spec, 64, 0xC501 + i as u64);
        for &scheme in SchemeId::ALL {
            assert!(
                legs.iter().any(|l| l.scheme == scheme && l.label == "auto"),
                "{}: no auto leg ran for {scheme}",
                k.name
            );
        }
    }
}

/// Seeded randomized size sweep: reductions at random power-of-two lengths
/// (synthesized stage-wise, §6.3) and stencils at random image sizes (the
/// size-generic baselines), all through the full differential harness.
#[test]
fn randomized_kernel_sizes_differential() {
    let mut rng = seeded_rng(0x512E);

    // Two random reduction lengths in 8..=64, staged synthesis.
    for trial in 0..2 {
        let len = 1usize << rng.gen_range(3..=6);
        let prog = reduction::synthesize_staged("dot-product", len, &fast_synthesis_options())
            .expect("dot-product is a staged reduction")
            .unwrap_or_else(|e| panic!("dot-product {len}: {e}"));
        let k = direct_kernel("dot-product", Some(len)).expect("sized dot-product");
        assert_differential_spec(&prog, &k.spec, 64, 0xA100 + trial + len as u64);
    }

    // Two random stencil sizes in 4..=8 (interior width).
    for (trial, name) in ["box-blur", "gx"].into_iter().enumerate() {
        let size = rng.gen_range(4..=8usize);
        let k = direct_kernel(name, Some(size)).expect("sized stencil");
        assert_differential_spec(
            &k.baseline,
            &k.spec,
            64,
            0xB200 + trial as u64 + size as u64,
        );
    }
}

/// The acceptance flow, as a test: `dot-product --size 64 --params auto`
/// and box blur on an 8×8 image synthesize, auto-select parameters, and
/// decrypt bit-identically to the interpreter — no hand-chosen parameters
/// anywhere.
#[test]
fn dot_product_64_and_box_blur_8x8_run_fully_automatically() {
    let prog = reduction::synthesize_staged("dot-product", 64, &fast_synthesis_options())
        .expect("dot-product stages")
        .expect("staged synthesis succeeds");
    let k = direct_kernel("dot-product", Some(64)).expect("sized dot-product");
    let report = assert_differential_spec(&prog, &k.spec, 64, 0xACCE);
    assert!(report.measured_budget_auto as f64 >= report.predicted_budget_bits);

    let k = direct_kernel("box-blur", Some(8)).expect("8x8 box blur");
    let r = synthesize(&k.spec, &k.sketch, &fast_synthesis_options()).expect("box blur at 8x8");
    assert_differential_spec(&r.program, &k.spec, 64, 0xACCF);
}
