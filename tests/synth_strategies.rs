//! Cross-strategy agreement and parallel determinism (ISSUE 7).
//!
//! Phase 2 of CEGIS re-searches with a tie-inclusive cost bound and picks
//! the canonical `(cost, serialization)` minimum among *all* correct
//! programs at the found component count — so whichever phase-1 strategy
//! produced the first correct program, the optimized result must be
//! byte-identical. These suites pin exactly that: bottom-up vs DFS on
//! every paper kernel, and bottom-up at jobs = 1/2/4.

use porcupine::cegis::{synthesize, SearchStrategy};
use porcupine::verify::verify;
use porcupine_kernels::{composite, reduction, stencil, PaperKernel};
use proptest::prelude::*;
use test_support::{
    fast_synthesis_options, quick_synthesis_options, seeded_rng, with_jobs, with_strategy,
};

/// The paper's kernel suite at test-friendly sizes: the nine direct
/// kernels plus the sobel and harris combine stages (the composite
/// kernels' synthesized pieces).
///
/// Debug builds (tier-1's `cargo test -q`) drop the two search-heaviest
/// kernels: unoptimized, their searches run long enough to hit the
/// per-call timeout, and a timed-out phase 2 salvages a *partial* best
/// program whose identity is cut-point-dependent — the agreement
/// assertion is only meaningful on proved-optimal results. Release runs
/// (`cargo test --release --test synth_strategies`) cover the full set.
fn paper_kernels() -> Vec<PaperKernel> {
    let img = stencil::default_image();
    let mut kernels: Vec<PaperKernel> = porcupine_kernels::DIRECT_NAMES
        .iter()
        .map(|name| porcupine_kernels::direct_kernel(name, None).expect("registry names"))
        .collect();
    kernels.push(composite::sobel_combine(img.slots()));
    kernels.push(composite::harris_det(img.slots()));
    kernels.push(composite::harris_trace(img.slots()));
    if cfg!(debug_assertions) {
        kernels.retain(|k| k.name != "l2-distance" && k.name != "roberts-cross");
    }
    kernels
}

/// Bottom-up and DFS converge to the byte-identical optimized program
/// (same cost, same canonical tie-break) on every paper kernel.
#[test]
fn strategies_agree_on_every_paper_kernel() {
    for k in paper_kernels() {
        let bu = synthesize(
            &k.spec,
            &k.sketch,
            &with_strategy(fast_synthesis_options(), SearchStrategy::BottomUp),
        )
        .unwrap_or_else(|e| panic!("{} (bottom-up): {e}", k.name));
        let dfs = synthesize(
            &k.spec,
            &k.sketch,
            &with_strategy(fast_synthesis_options(), SearchStrategy::Dfs),
        )
        .unwrap_or_else(|e| panic!("{} (dfs): {e}", k.name));
        assert_eq!(
            bu.program.to_string(),
            dfs.program.to_string(),
            "{}: strategies disagree",
            k.name
        );
        assert_eq!(bu.components, dfs.components, "{}", k.name);
        assert_eq!(
            bu.final_cost.to_bits(),
            dfs.final_cost.to_bits(),
            "{}",
            k.name
        );
        let mut rng = seeded_rng(5);
        verify(&bu.program, &k.spec, &mut rng).unwrap_or_else(|e| panic!("{}: {e:?}", k.name));
    }
}

/// A kernel at the direct-search wall — the 16-element dot product's
/// monolithic spec is nine instructions, the scale the repo previously
/// reached only via `synthesize_staged` — synthesizes end-to-end through
/// the term bank with no DFS fallback, verified against the monolithic
/// spec.
#[test]
fn bottom_up_reaches_past_the_dfs_wall() {
    let k = reduction::dot_product(16);
    let mut options = with_strategy(fast_synthesis_options(), SearchStrategy::BottomUp);
    // Skip phase-2 cost minimization: this pins the scaling claim (phase 1
    // finds *a* correct program), not the optimizer.
    options.optimize = false;
    let r = synthesize(&k.spec, &k.sketch, &options).expect("dot-16 synthesizes bottom-up");
    assert_eq!(r.strategy_used, SearchStrategy::BottomUp, "no DFS fallback");
    assert!(!r.cache_hit);
    assert_eq!(r.components, 5);
    let mut rng = seeded_rng(17);
    verify(&r.program, &k.spec, &mut rng).expect("past-wall program verifies");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The bottom-up determinism contract under CEGIS: the same seed
    /// yields the byte-identical program at jobs = 1, 2, and 4.
    #[test]
    fn bottom_up_is_thread_count_invariant(seed in 0u64..1000) {
        let k = reduction::dot_product(8);
        let base = with_strategy(quick_synthesis_options(seed), SearchStrategy::BottomUp);
        let reference = synthesize(&k.spec, &k.sketch, &with_jobs(base.clone(), 1))
            .expect("dot-8 synthesizes");
        for jobs in [2usize, 4] {
            let r = synthesize(&k.spec, &k.sketch, &with_jobs(base.clone(), jobs))
                .expect("dot-8 synthesizes");
            prop_assert_eq!(
                r.program.to_string(),
                reference.program.to_string(),
                "jobs={} diverged from jobs=1", jobs
            );
            prop_assert_eq!(r.final_cost.to_bits(), reference.final_cost.to_bits());
        }
    }
}
