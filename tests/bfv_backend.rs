//! Cross-crate integration: every baseline kernel, interpreted by Quill and
//! executed homomorphically on the BFV backend, must agree on the masked
//! output slots, with noise budget to spare.

use porcupine_kernels::{all_direct, composite, stencil};
use test_support::{assert_backend_matches_spec_mask, seeded_rng, small_ctx};

#[test]
fn all_baselines_execute_correctly_under_encryption() {
    let ctx = small_ctx();
    for (i, k) in all_direct().into_iter().enumerate() {
        let mut rng = seeded_rng(100 + i as u64);
        assert_backend_matches_spec_mask(&ctx, &k.baseline, &k.spec, 64, &mut rng);
    }
}

#[test]
fn sobel_baseline_executes_correctly_under_encryption() {
    let ctx = small_ctx();
    let img = stencil::default_image();
    let mut rng = seeded_rng(7);
    assert_backend_matches_spec_mask(
        &ctx,
        &composite::sobel_baseline(img),
        &composite::sobel_spec(img),
        64,
        &mut rng,
    );
}

#[test]
fn harris_baseline_executes_correctly_under_encryption() {
    let ctx = small_ctx();
    let img = stencil::default_image();
    let mut rng = seeded_rng(8);
    assert_backend_matches_spec_mask(
        &ctx,
        &composite::harris_baseline(img),
        &composite::harris_spec(img),
        64,
        &mut rng,
    );
}

#[test]
fn figure_6a_gx_executes_correctly_under_encryption() {
    let ctx = small_ctx();
    let prog = quill::sexpr::parse_program(
        "(kernel gx (inputs (ct 1) (pt 0))
           (let c1 (rot-ct c0 -5))
           (let c2 (add-ct-ct c0 c1))
           (let c3 (rot-ct c2 5))
           (let c4 (add-ct-ct c2 c3))
           (let c5 (rot-ct c4 -1))
           (let c6 (rot-ct c4 1))
           (let c7 (sub-ct-ct c6 c5))
           (return c7))",
    )
    .expect("Figure 6a parses");
    let k = stencil::gx(stencil::default_image());
    let mut rng = seeded_rng(9);
    assert_backend_matches_spec_mask(&ctx, &prog, &k.spec, 64, &mut rng);
}
