//! Cross-crate integration: every baseline kernel, interpreted by Quill and
//! executed homomorphically on the BFV backend, must agree on the masked
//! output slots, with noise budget to spare.

use bfv::encoding::Plaintext;
use bfv::encrypt::{Ciphertext, Decryptor, Encryptor};
use bfv::keys::KeyGenerator;
use bfv::params::{BfvContext, BfvParams};
use porcupine::codegen::BfvRunner;
use porcupine_kernels::{all_direct, composite, stencil};
use quill::interp;
use rand::{Rng, SeedableRng};

struct Session {
    ctx: BfvContext,
}

impl Session {
    fn new() -> Self {
        Session {
            ctx: BfvContext::new(BfvParams::test_small()).expect("valid parameters"),
        }
    }

    fn check(&self, prog: &quill::Program, spec: &porcupine::KernelSpec, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(&self.ctx, &mut rng);
        let encryptor = Encryptor::new(&self.ctx, keygen.public_key(&mut rng));
        let decryptor = Decryptor::new(&self.ctx, keygen.secret_key().clone());
        let runner = BfvRunner::for_programs(&self.ctx, &keygen, &[prog], &mut rng);

        let ct_model: Vec<Vec<u64>> = (0..spec.num_ct_inputs)
            .map(|_| (0..spec.n).map(|_| rng.gen_range(0..64)).collect())
            .collect();
        let pt_model: Vec<Vec<u64>> = (0..spec.num_pt_inputs)
            .map(|_| (0..spec.n).map(|_| rng.gen_range(0..64)).collect())
            .collect();
        let expected = interp::eval_concrete(prog, &ct_model, &pt_model, spec.t);

        let encoder = runner.encoder();
        let cts: Vec<Ciphertext> = ct_model
            .iter()
            .map(|v| encryptor.encrypt(&encoder.encode(v), &mut rng))
            .collect();
        let pts: Vec<Plaintext> = pt_model.iter().map(|v| encoder.encode(v)).collect();
        let ct_refs: Vec<&Ciphertext> = cts.iter().collect();
        let pt_refs: Vec<&Plaintext> = pts.iter().collect();
        let out = runner.run(prog, &ct_refs, &pt_refs);

        let budget = decryptor.invariant_noise_budget(&out);
        assert!(budget > 0, "{}: noise budget exhausted ({budget})", prog.name);
        let decoded = encoder.decode(&decryptor.decrypt(&out));
        for i in 0..spec.n {
            if spec.output_mask[i] {
                assert_eq!(decoded[i], expected[i], "{}: slot {i}", prog.name);
            }
        }
    }
}

#[test]
fn all_baselines_execute_correctly_under_encryption() {
    let s = Session::new();
    for (i, k) in all_direct().into_iter().enumerate() {
        s.check(&k.baseline, &k.spec, 100 + i as u64);
    }
}

#[test]
fn sobel_baseline_executes_correctly_under_encryption() {
    let s = Session::new();
    let img = stencil::default_image();
    s.check(&composite::sobel_baseline(img), &composite::sobel_spec(img), 7);
}

#[test]
fn harris_baseline_executes_correctly_under_encryption() {
    let s = Session::new();
    let img = stencil::default_image();
    s.check(&composite::harris_baseline(img), &composite::harris_spec(img), 8);
}

#[test]
fn figure_6a_gx_executes_correctly_under_encryption() {
    let s = Session::new();
    let prog = quill::sexpr::parse_program(
        "(kernel gx (inputs (ct 1) (pt 0))
           (let c1 (rot-ct c0 -5))
           (let c2 (add-ct-ct c0 c1))
           (let c3 (rot-ct c2 5))
           (let c4 (add-ct-ct c2 c3))
           (let c5 (rot-ct c4 -1))
           (let c6 (rot-ct c4 1))
           (let c7 (sub-ct-ct c6 c5))
           (return c7))",
    )
    .expect("Figure 6a parses");
    let k = stencil::gx(stencil::default_image());
    s.check(&prog, &k.spec, 9);
}
