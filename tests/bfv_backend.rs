//! Cross-crate integration: every baseline kernel, interpreted by Quill and
//! executed homomorphically on the BFV backend, must agree on the masked
//! output slots, with noise budget to spare.

use porcupine_kernels::{all_direct, composite, stencil};
use test_support::{assert_backend_matches_spec_mask, seeded_rng, small_ctx};

#[test]
fn all_baselines_execute_correctly_under_encryption() {
    let ctx = small_ctx();
    for (i, k) in all_direct().into_iter().enumerate() {
        let mut rng = seeded_rng(100 + i as u64);
        assert_backend_matches_spec_mask(&ctx, &k.baseline, &k.spec, 64, &mut rng);
    }
}

/// Kernel-level regression for the double-CRT representation: executing a
/// paper kernel with its encrypted inputs bounced to coefficient form
/// first must decrypt to the very same slots as the evaluation-form run —
/// the codegen path may not depend on which representation ciphertexts
/// arrive in.
#[test]
fn kernel_execution_is_representation_independent() {
    use porcupine::codegen::BfvRunner;
    use test_support::HeSession;

    let ctx = small_ctx();
    let kernel = all_direct()
        .into_iter()
        .next()
        .expect("at least one kernel");
    let (lowered, _) = porcupine::opt::optimize(&kernel.baseline, test_support::test_opt_level());
    let prog = &lowered;
    let mut rng = seeded_rng(42);
    let session = HeSession::new(&ctx, &mut rng);
    let runner = BfvRunner::for_programs(&ctx, &session.keygen, &[prog], &mut rng);
    let encoder = runner.encoder();

    let inputs = test_support::sample_model_inputs(prog.num_ct_inputs, kernel.spec.n, 64, &mut rng);
    let cts: Vec<bfv::Ciphertext> = inputs
        .iter()
        .map(|v| session.encryptor.encrypt(&encoder.encode(v), &mut rng))
        .collect();
    let cts_coeff: Vec<bfv::Ciphertext> = cts.iter().map(|c| c.to_coeff_form(&ctx)).collect();

    let run = |cts: &[bfv::Ciphertext]| {
        let refs: Vec<&bfv::Ciphertext> = cts.iter().collect();
        let out = runner.run(prog, &refs, &[]);
        encoder.decode(&session.decryptor.decrypt(&out))
    };
    assert_eq!(
        run(&cts),
        run(&cts_coeff),
        "{} diverged across input representations",
        prog.name
    );
}

#[test]
fn sobel_baseline_executes_correctly_under_encryption() {
    let ctx = small_ctx();
    let img = stencil::default_image();
    let mut rng = seeded_rng(7);
    assert_backend_matches_spec_mask(
        &ctx,
        &composite::sobel_baseline(img),
        &composite::sobel_spec(img),
        64,
        &mut rng,
    );
}

#[test]
fn harris_baseline_executes_correctly_under_encryption() {
    let ctx = small_ctx();
    let img = stencil::default_image();
    let mut rng = seeded_rng(8);
    assert_backend_matches_spec_mask(
        &ctx,
        &composite::harris_baseline(img),
        &composite::harris_spec(img),
        64,
        &mut rng,
    );
}

#[test]
fn figure_6a_gx_executes_correctly_under_encryption() {
    let ctx = small_ctx();
    let prog = quill::sexpr::parse_program(
        "(kernel gx (inputs (ct 1) (pt 0))
           (let c1 (rot-ct c0 -5))
           (let c2 (add-ct-ct c0 c1))
           (let c3 (rot-ct c2 5))
           (let c4 (add-ct-ct c2 c3))
           (let c5 (rot-ct c4 -1))
           (let c6 (rot-ct c4 1))
           (let c7 (sub-ct-ct c6 c5))
           (return c7))",
    )
    .expect("Figure 6a parses");
    let k = stencil::gx(stencil::default_image());
    let mut rng = seeded_rng(9);
    assert_backend_matches_spec_mask(&ctx, &prog, &k.spec, 64, &mut rng);
}
