//! Execution-engine contracts (ISSUE 9): hoisted rotations and the
//! DAG-parallel runner.
//!
//! Two guarantees are pinned here, both scheme-generic:
//!
//! - **Hoisting is invisible**: a rotation served from a shared hoisted
//!   decomposition decrypts bit-identically to the sequential key switch,
//!   with the same noise budget (±1 bit of measurement granularity), on
//!   BFV and BGV alike.
//! - **Thread count is invisible**: running any paper kernel with
//!   `eval_jobs` = 2 or 4 decrypts bit-identically to the sequential
//!   runner — exact modular arithmetic plus the `_assign` ≡ pure contract
//!   makes the schedule unobservable.

use bfv::params::BfvParams;
use porcupine::codegen::Runner;
use porcupine::opt::{optimize_with, OptLevel};
use porcupine::scheme::{BfvScheme, BgvScheme, Scheme};
use porcupine_kernels::{composite, stencil, PaperKernel};
use proptest::prelude::*;
use rand::Rng;
use test_support::{noise_test_params, seeded_rng};

/// Hoisted rotation (shared digit decomposition, per-element accumulate)
/// against the one-shot key switch, over random plaintexts.
fn hoisted_matches_sequential<S: Scheme>(seed: u64) {
    let ctx = S::context(BfvParams::test_small()).expect("valid parameters");
    let mut rng = seeded_rng(seed);
    let keygen = S::keygen(&ctx, &mut rng);
    let encryptor = S::encryptor(&ctx, &keygen, &mut rng);
    let decryptor = S::decryptor(&ctx, &keygen);
    let encoder = S::encoder(&ctx);
    let ev = S::evaluator(&ctx);
    let gk = S::galois_keys(&keygen, &[1, 2, 3], false, &mut rng);

    let t = S::params(&ctx).plain_modulus;
    let data: Vec<u64> = (0..S::slot_count(&encoder))
        .map(|_| rng.gen_range(0..t))
        .collect();
    let ct = S::encrypt(&encryptor, &S::encode(&encoder, &data), &mut rng);
    let hd = S::hoist(&ev, &ct).expect("both shipped backends hoist");
    for steps in [0i64, 1, 2, 3] {
        let hoisted = S::rotate_hoisted(&ev, &ct, &hd, steps, &gk);
        let mut sequential = ct.clone();
        S::rotate_rows_assign(&ev, &mut sequential, steps, &gk);
        assert_eq!(
            S::decode(&encoder, &S::decrypt(&decryptor, &hoisted)),
            S::decode(&encoder, &S::decrypt(&decryptor, &sequential)),
            "{} steps={steps}: hoisted decryption diverged",
            S::ID
        );
        let nb_h = S::noise_budget(&decryptor, &hoisted);
        let nb_s = S::noise_budget(&decryptor, &sequential);
        assert!(nb_h > 0, "{} steps={steps}: budget exhausted", S::ID);
        assert!(
            (nb_h - nb_s).abs() <= 1,
            "{} steps={steps}: noise budget diverged (hoisted {nb_h}, sequential {nb_s})",
            S::ID
        );
    }
    S::recycle_hoisted(&ev, hd);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn hoisted_rotation_is_invisible_bfv(seed in any::<u64>()) {
        hoisted_matches_sequential::<BfvScheme>(seed);
    }

    #[test]
    fn hoisted_rotation_is_invisible_bgv(seed in any::<u64>()) {
        hoisted_matches_sequential::<BgvScheme>(seed);
    }
}

/// The paper's kernel suite at test-friendly sizes, mirroring
/// `tests/synth_strategies.rs`: the nine direct kernels plus the sobel and
/// harris combine stages. No synthesis happens here (the baselines are
/// executed directly), so the full set runs in debug builds too.
fn paper_kernels() -> Vec<PaperKernel> {
    let img = stencil::default_image();
    let mut kernels: Vec<PaperKernel> = porcupine_kernels::DIRECT_NAMES
        .iter()
        .map(|name| porcupine_kernels::direct_kernel(name, None).expect("registry names"))
        .collect();
    kernels.push(composite::sobel_combine(img.slots()));
    kernels.push(composite::harris_det(img.slots()));
    kernels.push(composite::harris_trace(img.slots()));
    kernels
}

/// Lowers a kernel's baseline at `-O2` (the fan-richest legal form),
/// executes it at `eval_jobs` = 1, 2, and 4 on scheme `S`, and requires
/// every decryption to match the sequential one slot for slot.
fn jobs_are_bit_identical<S: Scheme>(k: &PaperKernel) {
    let (prog, _) = optimize_with(&k.baseline, OptLevel::O2, &S::ID.legality());
    let params = noise_test_params(&prog, k.spec.n);
    let ctx = S::context(params).expect("valid parameters");
    let mut rng = seeded_rng(0xE0B5);
    let keygen = S::keygen(&ctx, &mut rng);
    let encryptor = S::encryptor(&ctx, &keygen, &mut rng);
    let decryptor = S::decryptor(&ctx, &keygen);
    // Same key material for every runner (fresh rng per call), so the
    // only variable across configurations is the scheduler.
    let make = |jobs: usize| {
        Runner::<'_, S>::for_programs(&ctx, &keygen, &[&prog], &mut seeded_rng(1))
            .with_eval_jobs(jobs)
    };

    let runner1 = make(1);
    let encoder = runner1.encoder();
    let t = k.spec.t;
    let n = S::slot_count(encoder);
    let sample = |rng: &mut rand::rngs::StdRng| -> Vec<u64> {
        (0..n).map(|_| rng.gen_range(0..t)).collect()
    };
    let cts: Vec<S::Ciphertext> = (0..prog.num_ct_inputs)
        .map(|_| {
            let v = sample(&mut rng);
            S::encrypt(&encryptor, &S::encode(encoder, &v), &mut rng)
        })
        .collect();
    let pts: Vec<S::Plaintext> = (0..prog.num_pt_inputs)
        .map(|_| S::encode(encoder, &sample(&mut rng)))
        .collect();
    let ct_refs: Vec<&S::Ciphertext> = cts.iter().collect();
    let pt_refs: Vec<&S::Plaintext> = pts.iter().collect();

    let out = runner1.run(&prog, &ct_refs, &pt_refs);
    assert!(
        S::noise_budget(&decryptor, &out) > 0,
        "{} ({}): budget exhausted at eval_jobs=1",
        k.name,
        S::ID
    );
    let baseline = S::decode(encoder, &S::decrypt(&decryptor, &out));
    for jobs in [2usize, 4] {
        let out = make(jobs).run(&prog, &ct_refs, &pt_refs);
        assert_eq!(
            S::decode(encoder, &S::decrypt(&decryptor, &out)),
            baseline,
            "{} ({}): eval_jobs={jobs} diverged from sequential",
            k.name,
            S::ID
        );
    }
}

#[test]
fn eval_jobs_is_invisible_on_every_paper_kernel() {
    for k in paper_kernels() {
        jobs_are_bit_identical::<BfvScheme>(&k);
    }
}

/// Cross-scheme coverage of the parallel scheduler: the rotation-fan-heavy
/// box-blur kernel under BGV (depth-safe at any test parameter set).
#[test]
fn eval_jobs_is_invisible_under_bgv() {
    let k = porcupine_kernels::direct_kernel("box-blur", None).expect("registry name");
    jobs_are_bit_identical::<BgvScheme>(&k);
}
