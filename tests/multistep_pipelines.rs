//! Multi-step synthesis integration (§6.3/§7.2): Sobel and Harris composed
//! from synthesized stages must verify against the whole-pipeline
//! specifications and beat (or match) the monolithic baselines on
//! instruction count.

use porcupine::cegis::synthesize;
use porcupine::verify::verify;
use porcupine_kernels::{composite, stencil};
use quill::Program;
use test_support::{fast_synthesis_options, seeded_rng};

fn synth(k: &porcupine_kernels::PaperKernel) -> Program {
    synthesize(&k.spec, &k.sketch, &fast_synthesis_options())
        .unwrap_or_else(|e| panic!("{}: {e}", k.name))
        .program
}

#[test]
fn sobel_composed_from_synthesized_stages_verifies() {
    let img = stencil::default_image();
    let gx = synth(&stencil::gx(img));
    let gy = synth(&stencil::gy(img));
    let combine = synth(&composite::sobel_combine(img.slots()));
    let sobel = composite::sobel_from(&gx, &gy, &combine);

    let mut rng = seeded_rng(21);
    verify(&sobel, &composite::sobel_spec(img), &mut rng).expect("sobel verifies");

    let baseline = composite::sobel_baseline(img);
    assert!(
        sobel.len() < baseline.len(),
        "multi-step sobel ({}) must use fewer instructions than baseline ({})",
        sobel.len(),
        baseline.len()
    );
}

#[test]
fn harris_composed_from_synthesized_stages_verifies() {
    let img = stencil::default_image();
    let stages = composite::HarrisStages {
        gx: synth(&stencil::gx(img)),
        gy: synth(&stencil::gy(img)),
        blur: synth(&stencil::box_blur(img)),
        det: synth(&composite::harris_det(img.slots())),
        trace: synth(&composite::harris_trace(img.slots())),
    };
    let harris = composite::harris_from(&stages);

    let mut rng = seeded_rng(22);
    verify(&harris, &composite::harris_spec(img), &mut rng).expect("harris verifies");

    let baseline = composite::harris_baseline(img);
    assert!(
        harris.len() < baseline.len(),
        "multi-step harris ({}) must use fewer instructions than baseline ({})",
        harris.len(),
        baseline.len()
    );
}

#[test]
fn composed_pipelines_share_rotations_via_cse() {
    let img = stencil::default_image();
    let gx = stencil::gx(img).baseline;
    let gy = stencil::gy(img).baseline;
    let combine = composite::sobel_combine(img.slots()).baseline;
    let sobel = composite::sobel_from(&gx, &gy, &combine);
    // The two gradient baselines share four corner rotations of the input.
    assert_eq!(sobel.len(), gx.len() + gy.len() + combine.len() - 4);
}
