//! The noise model's contracts, checked against the real evaluator:
//!
//! * **Soundness** (property test): for random valid programs, the
//!   *measured* remaining invariant-noise budget after encrypted
//!   evaluation is never below the static analyzer's *predicted*
//!   remaining budget — the model is a sound lower bound on safety, at
//!   `-O0` and `-O2` alike. Honors `PORCUPINE_PARAMS=auto` (the dedicated
//!   CI leg), which evaluates each program under the parameters the
//!   selector picks for it, exercising selection end to end.
//! * **Regression pins**: the predicted consumed budget of the nine
//!   Table 2/3 kernels plus Sobel and Harris, lowered at `-O2` under the
//!   paper parameters, is pinned — a cost-model or optimizer change that
//!   silently worsens noise fails loudly here.

use bfv::encrypt::Ciphertext;
use bfv::noise::NoiseModel;
use bfv::params::{BfvContext, BfvParams};
use porcupine::codegen::BfvRunner;
use porcupine::opt::{optimize, OptLevel};
use porcupine_kernels::{all_direct, composite, stencil};
use proptest::prelude::*;
use quill::program::Program;
use rand::Rng;
use test_support::{arb_program, noise_test_params, seeded_rng, HeSession, T};

/// Model size the generated programs' rotations stay within.
const MODEL_N: usize = 8;

/// Lowers `prog` at `level`, evaluates it under the suite's parameters on
/// encrypted full-range inputs, and returns (measured budget, predicted
/// budget).
fn measured_vs_predicted(prog: &Program, level: OptLevel, seed: u64) -> (i64, f64) {
    let (lowered, _) = optimize(prog, level);
    let params = noise_test_params(&lowered, MODEL_N);
    let predicted = NoiseModel::for_params(&params)
        .analyze(&lowered)
        .predicted_budget_bits;

    let ctx = BfvContext::new(params).expect("suite params are valid");
    let mut rng = seeded_rng(seed);
    let session = HeSession::new(&ctx, &mut rng);
    let runner = BfvRunner::for_programs(&ctx, &session.keygen, &[&lowered], &mut rng);
    let encoder = runner.encoder();
    let slots = encoder.slot_count();
    let cts: Vec<Ciphertext> = (0..lowered.num_ct_inputs)
        .map(|_| {
            let v: Vec<u64> = (0..slots).map(|_| rng.gen_range(0..T)).collect();
            session.encryptor.encrypt(&encoder.encode(&v), &mut rng)
        })
        .collect();
    let ct_refs: Vec<&Ciphertext> = cts.iter().collect();
    let out = runner.run(&lowered, &ct_refs, &[]);
    (session.decryptor.invariant_noise_budget(&out), predicted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The static model never promises more budget than the evaluator
    /// delivers, whichever way the middle-end places relinearizations.
    #[test]
    fn measured_budget_never_below_predicted(
        prog in arb_program(2, 8),
        seed in any::<u64>(),
    ) {
        for level in [OptLevel::O0, OptLevel::O2] {
            let (measured, predicted) = measured_vs_predicted(&prog, level, seed);
            prop_assert!(
                measured as f64 >= predicted,
                "-{level}: measured {measured} < predicted {predicted:.1}\n{prog}"
            );
        }
    }
}

/// Predicted worst-case consumed budget (bits, at one decimal) for every
/// paper workload's baseline, lowered at `-O2`, under the paper's fixed
/// parameter set. These values are pure functions of the noise model, the
/// optimizer, and the parameter table — any change that silently worsens
/// (or improves) noise shows up as an exact-digit diff here. Regenerate by
/// running this test and copying the values from the failure message.
#[test]
fn predicted_consumed_budget_pins() {
    let model = NoiseModel::for_params(&BfvParams::paper());
    let img = stencil::default_image();
    let mut workloads: Vec<(String, Program)> = all_direct()
        .into_iter()
        .map(|k| (k.name.to_string(), k.baseline))
        .collect();
    workloads.push(("sobel".into(), composite::sobel_baseline(img)));
    workloads.push(("harris".into(), composite::harris_baseline(img)));

    let pins: &[(&str, f64)] = &[
        ("box-blur", 52.1),
        ("dot-product", 53.3),
        ("hamming-distance", 53.3),
        ("l2-distance", 54.4),
        ("linear-regression", 30.0),
        ("polynomial-regression", 73.0),
        ("gx", 53.5),
        ("gy", 53.5),
        ("roberts-cross", 96.1),
        ("sobel", 98.5),
        ("harris", 173.5),
    ];
    let mut failures = Vec::new();
    for ((name, baseline), (pin_name, pin)) in workloads.into_iter().zip(pins) {
        assert_eq!(name, *pin_name, "pin table out of order");
        let (lowered, _) = optimize(&baseline, OptLevel::O2);
        let consumed = model.analyze(&lowered).consumed_bits;
        if (consumed - pin).abs() > 0.05 {
            failures.push(format!("        (\"{name}\", {consumed:.1}),"));
        }
    }
    assert!(
        failures.is_empty(),
        "consumed-budget pins moved; new values:\n{}",
        failures.join("\n")
    );
}

/// The consumed-budget ordering the pins encode is also stable in
/// qualitative terms: multiply-free stencils are the quietest, one-level
/// multiplies sit in the middle, and the depth-4 Harris response consumes
/// the most.
#[test]
fn consumed_budget_ordering_is_sane() {
    let model = NoiseModel::for_params(&BfvParams::paper());
    let consumed = |p: &Program| model.analyze(&optimize(p, OptLevel::O2).0).consumed_bits;
    let img = stencil::default_image();
    let blur = consumed(&stencil::box_blur(img).baseline);
    let roberts = consumed(&stencil::roberts_cross(img).baseline);
    let harris = consumed(&composite::harris_baseline(img));
    assert!(blur < roberts, "rotation-only < one multiply level");
    assert!(roberts < harris, "one multiply level < depth-4 pipeline");
}
