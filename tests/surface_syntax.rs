//! Surface-syntax and codegen integration: every kernel program round-trips
//! through the s-expression syntax, and SEAL C++ emission stays consistent
//! with program structure.

use porcupine::codegen::emit_seal_cpp;
use porcupine_kernels::{all_direct, composite, stencil};
use quill::sexpr::{parse_program, to_string};

#[test]
fn all_baselines_roundtrip_through_sexpr() {
    for k in all_direct() {
        let printed = to_string(&k.baseline);
        let reparsed =
            parse_program(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", k.name));
        assert_eq!(reparsed, k.baseline, "{}", k.name);
    }
}

#[test]
fn composite_baselines_roundtrip_through_sexpr() {
    let img = stencil::default_image();
    for prog in [
        composite::sobel_baseline(img),
        composite::harris_baseline(img),
    ] {
        let printed = to_string(&prog);
        let reparsed = parse_program(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(reparsed, prog);
    }
}

#[test]
fn seal_emission_covers_every_instruction() {
    for k in all_direct() {
        let cpp = emit_seal_cpp(&k.baseline);
        // one `seal::Ciphertext cN;` declaration per instruction
        let decls = cpp.matches("seal::Ciphertext c").count();
        assert_eq!(decls, k.baseline.len(), "{}", k.name);
        // every ct-ct multiply is followed by a relinearization
        let muls = cpp.matches("ev.multiply(").count();
        let relins = cpp.matches("ev.relinearize_inplace(").count();
        assert_eq!(muls, relins, "{}", k.name);
    }
}

#[test]
fn seal_emission_of_harris_is_complete() {
    let img = stencil::default_image();
    let harris = composite::harris_baseline(img);
    let cpp = emit_seal_cpp(&harris);
    assert!(cpp.contains("void harris_baseline"));
    assert!(cpp.contains("splat_16"));
    assert_eq!(
        cpp.matches("ev.relinearize_inplace(").count(),
        harris.ct_ct_mul_count()
    );
}
