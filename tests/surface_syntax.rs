//! Surface-syntax and codegen integration: every kernel program round-trips
//! through the s-expression syntax, and SEAL C++ emission stays consistent
//! with program structure.

use porcupine::codegen::emit_seal_cpp;
use porcupine::opt::{optimize, OptLevel};
use porcupine_kernels::{all_direct, composite, stencil};
use quill::sexpr::{parse_program, to_string};

#[test]
fn all_baselines_roundtrip_through_sexpr() {
    for k in all_direct() {
        let printed = to_string(&k.baseline);
        let reparsed =
            parse_program(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", k.name));
        assert_eq!(reparsed, k.baseline, "{}", k.name);
    }
}

#[test]
fn composite_baselines_roundtrip_through_sexpr() {
    let img = stencil::default_image();
    for prog in [
        composite::sobel_baseline(img),
        composite::harris_baseline(img),
    ] {
        let printed = to_string(&prog);
        let reparsed = parse_program(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(reparsed, prog);
    }
}

#[test]
fn seal_emission_covers_every_instruction() {
    for k in all_direct() {
        // Raw (pre-middle-end) IR carries no relinearization, and the
        // emitter must not invent one.
        let cpp = emit_seal_cpp(&k.baseline);
        let decls = cpp.matches("seal::Ciphertext c").count();
        assert_eq!(decls, k.baseline.len(), "{}", k.name);
        assert_eq!(cpp.matches("ev.relinearize_inplace(").count(), 0);

        // At -O0 every ct-ct multiply is followed by its relinearization,
        // exactly the paper's lowering.
        let (lowered, _) = optimize(&k.baseline, OptLevel::O0);
        let cpp = emit_seal_cpp(&lowered);
        let decls = cpp.matches("seal::Ciphertext c").count();
        assert_eq!(decls, lowered.len(), "{}", k.name);
        let muls = cpp.matches("ev.multiply(").count();
        let relins = cpp.matches("ev.relinearize_inplace(").count();
        assert_eq!(muls, relins, "{}", k.name);
    }
}

#[test]
fn seal_emission_of_harris_is_complete() {
    let img = stencil::default_image();
    let harris = composite::harris_baseline(img);
    let (o0, _) = optimize(&harris, OptLevel::O0);
    let cpp = emit_seal_cpp(&o0);
    assert!(cpp.contains("void harris_baseline"));
    assert!(cpp.contains("splat_16"));
    assert_eq!(
        cpp.matches("ev.relinearize_inplace(").count(),
        harris.ct_ct_mul_count()
    );
    // -O2 emits strictly fewer relinearizations for the same pipeline.
    let (o2, _) = optimize(&harris, OptLevel::O2);
    let cpp2 = emit_seal_cpp(&o2);
    let o2_relins = cpp2.matches("ev.relinearize_inplace(").count();
    assert!(
        o2_relins < harris.ct_ct_mul_count(),
        "-O2 relins {o2_relins} vs muls {}",
        harris.ct_ct_mul_count()
    );
}
